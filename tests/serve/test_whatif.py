"""Gateway coverage for the ``what-if`` request kind.

The kind rides the generic typed-envelope machinery, so the gateway
needs no what-if-specific code — these tests pin that down: worker
digests match parent digests, identical perturbations hit the cache
(including the sparse-vs-explicit wire forms), in-flight duplicates
coalesce, and malformed perturbations surface as HTTP 400 with the
CLI's config exit code.
"""

import threading
from types import SimpleNamespace

import pytest

from repro.api import WhatIfRequest
from repro.parallel import Task, run_tasks
from repro.serve import EventBus, Executor, ResultCache
from repro.serve.protocol import DONE, RUNNING
from tests.serve.conftest import wait_for
from tests.serve.test_gateway import gateway_test, http_json

#: small machine and day so real-dispatch tests stay sub-second
SMALL = {"rm": "eslurm", "n_nodes": 8, "n_satellites": 2, "n_jobs": 5}


class TestWorkerDigests:
    def test_digest_stable_across_spawned_workers(self):
        # Two cells on a real spawned pool (jobs=2 forces the pool path):
        # the digest a worker stamps on its what-if response must equal
        # the digest the parent computes for the same request.
        requests = [
            WhatIfRequest(seed=21, **SMALL),
            WhatIfRequest(seed=22, **SMALL,
                          perturb={"kind": "cancel-job", "job_id": 1}),
        ]
        tasks = [
            Task(id=f"t{i}", kind="serve", spec={"request": r.to_wire()})
            for i, r in enumerate(requests)
        ]
        results = run_tasks(tasks, jobs=2)
        for request, result in zip(requests, results):
            assert result.ok, result.error
            assert result.value["response"]["digest"] == request.digest()


class TestCacheAndCoalescing:
    def test_repeat_whatif_served_from_cache(self):
        # real dispatch end to end; the repeat must not re-simulate
        @gateway_test()
        async def _(gw):
            wire = {**SMALL, "seed": 5, "perturb": {"kind": "submit-job"}}
            status, first = await http_json(
                gw.port, "POST", "/v1/what-if?wait=1", wire
            )
            assert status == 200, first
            assert first["state"] == "done" and first["ok"] is True
            assert first["cached"] is False
            assert first["result"]["probe"] is not None

            status, again = await http_json(
                gw.port, "POST", "/v1/what-if?wait=1", wire
            )
            assert status == 200
            assert again["cached"] is True
            assert again["digest"] == first["digest"]

            # a sparse perturbation and its spelled-out equivalent share
            # one digest, so the explicit form is also a hit
            explicit = {
                **SMALL, "seed": 5,
                "perturb": {"kind": "submit-job", "job_nodes": 8,
                            "job_runtime_s": 3600.0, "job_limit_s": None},
            }
            status, spelled = await http_json(
                gw.port, "POST", "/v1/what-if?wait=1", explicit
            )
            assert spelled["cached"] is True
            assert spelled["digest"] == first["digest"]

            _, stats = await http_json(gw.port, "GET", "/v1/stats")
            assert stats["cache"]["hits"] >= 2
            assert stats["executor"]["completed"] == 1  # one real run

    def test_identical_inflight_whatif_coalesces(self, gates):
        from repro.serve import SessionStore

        cache = ResultCache(16)
        events = EventBus()
        store = SessionStore()
        executor = Executor(workers=0, queue_size=8, cache=cache, events=events)
        executor.start()
        try:
            gates[31] = threading.Event()
            primary = store.create(WhatIfRequest(seed=31, **SMALL))
            assert executor.submit(primary) == "queued"
            assert wait_for(lambda: primary.state == RUNNING)
            follower = store.create(WhatIfRequest(seed=31, **SMALL))
            assert executor.submit(follower) == "coalesced"
            gates[31].set()
            assert primary.done.wait(10.0) and follower.done.wait(10.0)
            assert follower.state == DONE
            assert follower.envelope is primary.envelope  # one execution
        finally:
            for gate in gates.values():
                gate.set()
            executor.stop()


class TestValidation:
    @pytest.mark.parametrize("wire", [
        {"perturb": {"kind": "teleport"}},
        {"perturb": {"kind": "submit-job", "nodes": 4}},
        {"perturb": {"kind": "fail-node", "duration_s": -1.0}},
        {"at_s": 999_999.0},  # beyond the horizon
        {"at_z": 1.0},  # unknown envelope field
    ])
    def test_malformed_whatif_gets_400_with_config_exit_code(self, wire):
        @gateway_test()
        async def _(gw):
            status, body = await http_json(
                gw.port, "POST", "/v1/what-if", {**SMALL, **wire}
            )
            assert status == 400, (wire, body)
            assert body["exit_code"] == 3  # EXIT_CONFIG, the CLI code
