"""Tests for the Fig. 5 trace-analysis functions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sched.job import Job
from repro.workload import (
    WorkloadConfig,
    estimate_accuracy_values,
    generate_trace,
    job_correlation_by_id_gap,
    job_correlation_by_interval,
)
from repro.workload.analysis import jobs_correlated


def job(job_id=0, name="a", user="u", nodes=4, runtime=100.0, est=None, submit=0.0):
    return Job(job_id, name, user, nodes, runtime, est, submit)


class TestAccuracyValues:
    def test_p_definition(self):
        jobs = [job(est=200.0, runtime=100.0), job(job_id=1, est=50.0, runtime=100.0)]
        P = estimate_accuracy_values(jobs)
        np.testing.assert_allclose(P, [0.5, 2.0])

    def test_jobs_without_estimates_skipped(self):
        jobs = [job(est=None), job(job_id=1, est=100.0)]
        assert len(estimate_accuracy_values(jobs)) == 1

    def test_sorted_output(self):
        jobs = generate_trace(WorkloadConfig(), 500, seed=1)
        P = estimate_accuracy_values(jobs)
        assert (np.diff(P) >= 0).all()


class TestCorrelationPredicate:
    def test_same_everything_correlated(self):
        assert jobs_correlated(job(), job(job_id=1))

    def test_different_name_not_correlated(self):
        assert not jobs_correlated(job(name="a"), job(job_id=1, name="b"))

    def test_far_runtime_not_correlated(self):
        assert not jobs_correlated(job(runtime=100.0), job(job_id=1, runtime=1000.0))

    def test_far_nodes_not_correlated(self):
        assert not jobs_correlated(job(nodes=4), job(job_id=1, nodes=64))

    def test_symmetry(self):
        a, b = job(runtime=100.0), job(job_id=1, runtime=130.0)
        assert jobs_correlated(a, b) == jobs_correlated(b, a)


class TestFig5Shapes:
    """The qualitative claims of Fig. 5b/5c as assertions."""

    @pytest.fixture(scope="class")
    def t2a(self):
        return generate_trace(WorkloadConfig.tianhe2a(), 12_000, seed=1)

    @pytest.fixture(scope="class")
    def ng(self):
        return generate_trace(WorkloadConfig.ng_tianhe(jobs_per_day=1000.0), 12_000, seed=1)

    def test_interval_correlation_decays(self, t2a):
        ratios = job_correlation_by_interval(t2a, [0.5, 30.0], seed=2)
        assert ratios[0] > ratios[1] + 0.1

    def test_tianhe2a_floor_higher_than_ng(self, t2a, ng):
        r_t2a = job_correlation_by_interval(t2a, [40.0], seed=3)[0]
        r_ng = job_correlation_by_interval(ng, [40.0], seed=3)[0]
        assert r_t2a > r_ng  # mature machine keeps a correlation floor

    def test_id_gap_correlation_decays(self, t2a):
        ratios = job_correlation_by_id_gap(t2a, [1, 700], seed=4)
        assert ratios[0] > ratios[1] + 0.1

    def test_id_gap_floor_small_but_positive(self, t2a):
        floor = job_correlation_by_id_gap(t2a, [1500], seed=5)[0]
        assert 0.0 < floor < 0.25  # paper stabilises around 0.08

    def test_empty_buckets_rejected(self, t2a):
        with pytest.raises(ConfigurationError):
            job_correlation_by_interval(t2a, [])
        with pytest.raises(ConfigurationError):
            job_correlation_by_id_gap(t2a, [])
        with pytest.raises(ConfigurationError):
            job_correlation_by_id_gap(t2a, [0])

    def test_deterministic_given_seed(self, t2a):
        r1 = job_correlation_by_interval(t2a, [1.0, 10.0], seed=9)
        r2 = job_correlation_by_interval(t2a, [1.0, 10.0], seed=9)
        assert r1 == r2
