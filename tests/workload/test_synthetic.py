"""Tests for the calibrated workload generator.

The calibration targets are the paper's reported trace statistics;
each one is asserted here as an invariant of the generator.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sched.job import Job
from repro.workload import WorkloadConfig, generate_trace
from repro.workload.users import AppPool


def trace(cfg=None, n=4000, seed=0):
    return generate_trace(cfg or WorkloadConfig.tianhe2a(), n, seed=seed)


class TestBasics:
    def test_count_and_order(self):
        jobs = trace(n=500)
        assert len(jobs) == 500
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)

    def test_ids_follow_submission_order(self):
        jobs = trace(n=500)
        assert [j.job_id for j in jobs] == list(range(500))

    def test_deterministic(self):
        a = trace(n=300, seed=5)
        b = trace(n=300, seed=5)
        assert [(j.name, j.submit_time, j.runtime_s) for j in a] == [
            (j.name, j.submit_time, j.runtime_s) for j in b
        ]

    def test_seed_changes_trace(self):
        a = trace(n=300, seed=1)
        b = trace(n=300, seed=2)
        assert [j.runtime_s for j in a] != [j.runtime_s for j in b]

    def test_zero_jobs(self):
        assert trace(n=0) == []

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_trace(WorkloadConfig(), -1)

    def test_job_id_base(self):
        jobs = generate_trace(WorkloadConfig(), 10, job_id_base=100)
        assert jobs[0].job_id == 100

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(repeat_prob=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(n_users=0)

    def test_sizes_bounded(self):
        cfg = WorkloadConfig(max_nodes=64)
        assert all(1 <= j.n_nodes <= 64 for j in trace(cfg, n=1000))


class TestPaperCalibration:
    """Each paper-reported statistic, asserted with tolerance."""

    def test_overestimation_fraction_80_90(self):
        jobs = trace(n=5000, seed=3)
        with_est = [j for j in jobs if j.user_estimate_s is not None]
        over = sum(j.user_estimate_s > j.runtime_s for j in with_est)
        assert 0.78 <= over / len(with_est) <= 0.92

    def test_long_jobs_evening_biased(self):
        jobs = trace(n=8000, seed=4)
        long_jobs = [j for j in jobs if j.runtime_s > 6 * 3600]
        assert len(long_jobs) > 100
        evening = sum(18 <= (j.submit_time // 3600) % 24 < 24 for j in long_jobs)
        frac = evening / len(long_jobs)
        # paper: 71.4% of >6h jobs submitted between 18:00 and 24:00
        assert 0.55 <= frac <= 0.85

    def test_repetition_within_a_day(self):
        jobs = trace(n=5000, seed=5)
        # Group by user; count submissions repeating a (user, name) seen
        # in that user's previous 24h.
        last_seen: dict[tuple[str, str], float] = {}
        seen_user: dict[str, float] = {}
        repeats = eligible = 0
        for j in jobs:
            if j.user in seen_user and j.submit_time - seen_user[j.user] <= 86_400:
                eligible += 1
                key = (j.user, j.name)
                if key in last_seen and j.submit_time - last_seen[key] <= 86_400:
                    repeats += 1
            seen_user[j.user] = j.submit_time
            last_seen[(j.user, j.name)] = j.submit_time
        assert repeats / eligible > 0.6  # paper: 89.2% same-job resubmission

    def test_estimates_rounded_to_ten_minutes(self):
        jobs = trace(n=500)
        for j in jobs:
            if j.user_estimate_s is not None:
                assert j.user_estimate_s % 600 == 0

    def test_some_jobs_without_estimates(self):
        jobs = trace(n=3000, seed=6)
        missing = sum(j.user_estimate_s is None for j in jobs)
        assert 0 < missing < 0.15 * len(jobs)


class TestAppPool:
    def test_zipf_concentration(self):
        rng = np.random.default_rng(0)
        pool = AppPool(40, max_nodes=1024, long_job_fraction=0.2, rng=rng)
        conc = pool.popularity_concentration()
        assert 0.02 < conc < 0.3  # skewed but not degenerate

    def test_empty_pool_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            AppPool(0, 10, 0.1, rng)

    def test_shared_names_across_users(self):
        jobs = trace(n=3000, seed=7)
        names_by_user: dict[str, set] = {}
        for j in jobs:
            names_by_user.setdefault(j.user, set()).add(j.name)
        all_names = set().union(*names_by_user.values())
        # community codes: fewer distinct apps than users x repertoire
        assert len(all_names) <= 30
