"""Tests for JobTrace and SWF round-tripping."""

import pytest

from repro.errors import TraceFormatError
from repro.sched.job import Job
from repro.workload import JobTrace, WorkloadConfig, generate_trace, read_swf, write_swf


def small_trace(n=50, seed=0):
    return JobTrace(generate_trace(WorkloadConfig(), n, seed=seed), name="t")


class TestJobTrace:
    def test_sorted_on_construction(self):
        j1 = Job(1, "a", "u", 1, 10.0, None, submit_time=100.0)
        j2 = Job(2, "a", "u", 1, 10.0, None, submit_time=50.0)
        tr = JobTrace([j1, j2])
        assert tr[0] is j2

    def test_len_iter_getitem(self):
        tr = small_trace(10)
        assert len(tr) == 10
        assert list(tr)[0] is tr[0]

    def test_window(self):
        tr = small_trace(100)
        t0 = tr[0].submit_time
        mid = tr[50].submit_time
        w = tr.window(t0, mid)
        assert all(t0 <= j.submit_time < mid for j in w)

    def test_head(self):
        assert len(small_trace(20).head(5)) == 5

    def test_span_and_stats(self):
        tr = small_trace(200)
        st = tr.stats()
        assert st["n_jobs"] == 200
        assert st["n_users"] > 1
        assert st["mean_runtime_s"] > 0
        assert 0.0 <= st["overestimate_frac"] <= 1.0

    def test_empty_stats(self):
        assert JobTrace([]).stats() == {"n_jobs": 0}
        assert JobTrace([]).span_s == 0.0


class TestSwfRoundTrip:
    def test_round_trip_preserves_fields(self, tmp_path):
        tr = small_trace(40)
        path = tmp_path / "trace.swf"
        write_swf(tr, path)
        back = read_swf(path)
        assert len(back) == len(tr)
        for orig, loaded in zip(tr, back):
            assert loaded.job_id == orig.job_id
            assert loaded.n_nodes == orig.n_nodes
            assert loaded.runtime_s == pytest.approx(orig.runtime_s, abs=1.0)
            if orig.user_estimate_s is not None:
                assert loaded.user_estimate_s == pytest.approx(orig.user_estimate_s, abs=1.0)

    def test_user_identity_consistent(self, tmp_path):
        tr = small_trace(60)
        path = tmp_path / "trace.swf"
        write_swf(tr, path)
        back = read_swf(path)
        # same-user jobs stay same-user after the int mapping
        orig_groups = {}
        for j in tr:
            orig_groups.setdefault(j.user, []).append(j.job_id)
        new_groups = {}
        for j in back:
            new_groups.setdefault(j.user, []).append(j.job_id)
        assert sorted(map(sorted, orig_groups.values())) == sorted(
            map(sorted, new_groups.values())
        )

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("; header\n\n" + " ".join(["1"] + ["-1"] * 17).replace("-1", "5", 1) + "\n")
        # runtime field (index 3) is -1 -> skipped entirely
        assert len(read_swf(path)) == 0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(TraceFormatError):
            read_swf(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text(" ".join(["x"] * 18) + "\n")
        with pytest.raises(TraceFormatError):
            read_swf(path)
