"""Shared equivalence-test plumbing for the snapshot suite.

Every equivalence test compares the same three arms of one config:

* ``straight_run`` — build, run to the horizon, return the golden trace
  hash and the canonical final payload (the byte-identity pair);
* ``warm_split_run`` — build, replay ``k`` events, capture, resume the
  *live* world to the horizon;
* ``cold_split_run`` — cold-restore the captured snapshot (rebuild +
  verified replay) and resume the rebuilt world.

``setup`` is an optional deterministic post-build hook (scheduled
faults, maintenance windows...).  It must be passed identically to all
three arms — cold restores re-apply it via ``restore``'s ``on_build``
seam before replay, exactly as the build path did.
"""

from repro.api import canonical_json
from repro.snapshot import SimWorld, capture, restore


def finish(world, digest):
    """Run out the day; return (trace hash, canonical payload)."""
    world.run_to_horizon()
    return digest.hexdigest(), canonical_json(world.final_payload())


def straight_run(config, setup=None):
    """Returns ((hash, payload), total event count)."""
    world = SimWorld(config)
    if setup is not None:
        setup(world)
    digest = world.attach_trace_digest()
    result = finish(world, digest)
    return result, world.sim.events_processed


def warm_split_run(config, k, setup=None):
    """Pause at event ``k``, capture, resume.  Returns (snapshot, result)."""
    world = SimWorld(config)
    if setup is not None:
        setup(world)
    digest = world.attach_trace_digest()
    world.run_events_until(k)
    snapshot = capture(world)
    return snapshot, finish(world, digest)


def cold_split_run(snapshot, setup=None):
    """Verified cold restore of ``snapshot``, resumed to the horizon."""
    holder = {}

    def on_build(world):
        if setup is not None:
            setup(world)
        holder["digest"] = world.attach_trace_digest()

    world = restore(snapshot, verify=True, on_build=on_build)
    return finish(world, holder["digest"])
