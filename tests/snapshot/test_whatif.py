"""Tests for what-if delta-replay and the perturbation wire format."""

import pytest

from repro.api import SimulationConfig, canonical_json
from repro.errors import ConfigurationError
from repro.sched.job import JobState
from repro.snapshot import (
    PROBE_JOB_ID_BASE,
    CancelJob,
    FailNode,
    SimWorld,
    SubmitJob,
    capture,
    perturbation_from_wire,
    what_if,
)

CONFIG = SimulationConfig(
    rm="eslurm", n_nodes=32, n_satellites=2, seed=7, n_jobs=20, horizon_s=86_400.0
)


def snapshot_at(k=9000, config=CONFIG, detach=False):
    world = SimWorld(config)
    world.run_events_until(k)
    return capture(world, detach=detach)


def snapshot_when(predicate, config=CONFIG):
    """Capture at the first event boundary where ``predicate(world)``."""
    world = SimWorld(config)
    while not predicate(world):
        before = world.sim.events_processed
        if world.run_events_until(before + 1) == 0:
            raise AssertionError("predicate never held before the horizon")
    return capture(world)


class TestWhatIf:
    def test_warm_consumes_cold_rebuilds_same_answer(self):
        warm = what_if(snapshot_at(), SubmitJob(job_nodes=4))
        cold = what_if(snapshot_at(detach=True), SubmitJob(job_nodes=4))
        assert warm.warm and not cold.warm
        a, b = warm.to_payload(), cold.to_payload()
        assert canonical_json(a) == canonical_json(b)

    def test_deterministic_across_repeats(self):
        results = [
            canonical_json(what_if(snapshot_at(), FailNode(node_id=5)).to_payload())
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_delta_replay_is_cheaper_than_rerun(self):
        snapshot = snapshot_at(k=9000)
        outcome = what_if(snapshot, SubmitJob())
        assert outcome.events_at_snapshot == 9000
        assert outcome.events_resumed == outcome.events_total - 9000
        assert outcome.events_resumed < outcome.events_total  # the point

    def test_outcome_payload_shape(self):
        outcome = what_if(snapshot_at(), SubmitJob(job_nodes=2))
        payload = outcome.to_payload()
        assert payload["perturbation"]["kind"] == "submit-job"
        assert payload["snapshot_digest"].startswith("sha256:")
        assert payload["result"]["events"] == payload["events_total"]


class TestPerturbations:
    def test_submit_job_probe_reports_outcome(self):
        outcome = what_if(snapshot_at(), SubmitJob(job_nodes=2, job_runtime_s=60.0))
        probe = outcome.probe
        assert probe["job_id"] >= PROBE_JOB_ID_BASE
        assert probe["started"] is True
        assert probe["wait_s"] >= 0.0

    def test_submit_job_wider_than_machine_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            what_if(snapshot_at(), SubmitJob(job_nodes=1000))

    def test_fail_node_kills_and_reports(self):
        snapshot = snapshot_when(lambda w: w.rm.pool.running)
        running = snapshot.state["pool"]["running"]
        victim = next(iter(sorted(running.values(), key=lambda r: r["nodes"])))
        node_id = victim["nodes"][0]
        outcome = what_if(snapshot, FailNode(node_id=node_id, duration_s=600.0))
        assert outcome.probe["node_id"] == node_id
        assert outcome.probe["jobs_failed_on_node"]

    def test_fail_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError, match="not a compute node"):
            what_if(snapshot_at(), FailNode(node_id=10_000))

    def test_cancel_queued_job(self):
        # An 8-node machine with a 40-job day actually builds a queue.
        congested = SimulationConfig(
            rm="eslurm", n_nodes=8, n_satellites=2, seed=7, n_jobs=40,
            horizon_s=86_400.0,
        )
        snapshot = snapshot_when(lambda w: len(w.rm.queue) > 0, config=congested)
        queued = snapshot.state["queue"]["ids"]
        outcome = what_if(snapshot, CancelJob(job_id=queued[0]))
        assert outcome.probe == {
            "job_id": queued[0], "found": True,
            "state": JobState.CANCELLED.name, "cancelled": True,
        }

    def test_cancel_absent_job_is_noop(self):
        outcome = what_if(snapshot_at(), CancelJob(job_id=999_999))
        assert outcome.probe["found"] is False
        assert outcome.probe["cancelled"] is False


class TestPerturbationWire:
    @pytest.mark.parametrize("perturbation", [
        SubmitJob(job_nodes=3, job_runtime_s=120.0, job_limit_s=240.0),
        FailNode(node_id=9, duration_s=60.0),
        CancelJob(job_id=4),
    ])
    def test_round_trip(self, perturbation):
        assert perturbation_from_wire(perturbation.to_wire()) == perturbation

    @pytest.mark.parametrize("wire,match", [
        ({"kind": "teleport"}, "unknown perturbation kind"),
        ({"kind": "submit-job", "nodes": 4}, "unknown field"),
        ({"kind": "submit-job", "job_nodes": 0}, "job_nodes"),
        ({"kind": "submit-job", "job_runtime_s": -1.0}, "job_runtime_s"),
        ({"kind": "fail-node", "node_id": -1}, "node_id"),
        ({"kind": "fail-node", "duration_s": 0.0}, "duration_s"),
        ({"kind": "cancel-job", "job_id": -2}, "job_id"),
        ("not-a-dict", "must be an object"),
    ])
    def test_malformed_rejected(self, wire, match):
        with pytest.raises(ConfigurationError, match=match):
            perturbation_from_wire(wire)
