"""Hostile snapshot cuts: mid-broadcast and mid-malleable-segment.

The random-boundary sweep in ``test_equivalence`` rarely lands on the
nastiest instants — while relay/launch connections are still open
(pending lazy socket closes) or while an elastic job is inside a
resized work segment (its remaining-work retiming lives in the FSM
timer).  A probe run finds those exact event indices, then the usual
three-arm equivalence (straight vs. warm split vs. cold restore) is
asserted at each, and the captured state tree is checked to actually
carry the mid-phase FSM and socket payloads.
"""

from functools import lru_cache

import pytest

from repro.api import SimulationConfig
from repro.rm.lifecycle import WORK
from repro.snapshot import SimWorld, capture
from repro.workload.synthetic import WorkloadConfig
from tests.snapshot.helpers import cold_split_run, straight_run, warm_split_run

SEED = 0


def make_config(seed=SEED):
    # A tight machine full of elastic jobs: backfill has to shrink
    # running jobs to start queue heads, so the day spends real time
    # inside resized work segments.
    return SimulationConfig(
        rm="eslurm",
        n_nodes=32,
        n_satellites=2,
        seed=seed,
        failures=True,
        malleable=True,
        n_jobs=40,
        horizon_s=86_400.0,
        workload=WorkloadConfig(max_nodes=16, malleable_fraction=0.8),
    )


@lru_cache(maxsize=None)
def hostile_cuts(seed=SEED):
    """Step a probe world one event at a time, classifying each boundary.

    Returns ``(mid_broadcast, mid_malleable)`` — event indices where,
    respectively, master connections are still open (a broadcast or
    launch round is in flight) and a resized elastic job sits inside a
    work segment.
    """
    world = SimWorld(make_config(seed))
    rm = world.rm
    sockets = rm.master_acct.sockets
    mid_broadcast, mid_malleable = [], []
    k = 0
    while world.run_events_until(k + 1):
        k += 1
        if any(close_time > world.now for close_time, _, _ in sockets._pending):
            mid_broadcast.append(k)
        if (rm.resize_shrinks or rm.resize_grows) and any(
            getattr(proc, "phase", None) == WORK and proc.job.malleable
            for proc in rm._job_procs.values()
        ):
            mid_malleable.append(k)
    return tuple(mid_broadcast), tuple(mid_malleable)


@lru_cache(maxsize=None)
def straight(seed=SEED):
    return straight_run(make_config(seed))


def assert_split_equivalent(seed, k):
    expected, _ = straight(seed)
    snapshot, warm = warm_split_run(make_config(seed), k)
    assert warm == expected, f"seed={seed} k={k}: warm resume diverged"
    cold = cold_split_run(snapshot)
    assert cold == expected, f"seed={seed} k={k}: cold restore diverged"


def spread(cuts):
    """First, middle and last index — the edges plus a deep-in cut."""
    return sorted({cuts[0], cuts[len(cuts) // 2], cuts[-1]})


class TestHostileCutEquivalence:
    def test_scenario_reaches_both_hostile_states(self):
        mid_broadcast, mid_malleable = hostile_cuts()
        assert mid_broadcast, "day must contain in-flight broadcast instants"
        assert mid_malleable, "day must contain resized-segment instants"

    def test_cuts_mid_broadcast(self):
        mid_broadcast, _ = hostile_cuts()
        for k in spread(mid_broadcast):
            assert_split_equivalent(SEED, k)

    def test_cuts_mid_malleable_segment(self):
        _, mid_malleable = hostile_cuts()
        for k in spread(mid_malleable):
            assert_split_equivalent(SEED, k)

    def test_cut_in_the_intersection(self):
        # Open connections *and* a retimed segment at once, if the day
        # ever reaches that state.
        mid_broadcast, mid_malleable = hostile_cuts()
        both = sorted(set(mid_broadcast) & set(mid_malleable))
        if not both:
            pytest.skip("no instant is simultaneously mid-broadcast and mid-segment")
        assert_split_equivalent(SEED, both[len(both) // 2])


class TestHostileStateIsCaptured:
    """The snapshot must carry the mid-phase payloads, not skate past them."""

    def test_mid_broadcast_snapshot_carries_open_sockets(self):
        mid_broadcast, _ = hostile_cuts()
        world = SimWorld(make_config())
        world.run_events_until(mid_broadcast[len(mid_broadcast) // 2])
        snap = capture(world)
        n_pending, first_close = snap.state["rm"]["master"]["sockets_pending"]
        assert n_pending > 0
        assert first_close > snap.sim_now

    def test_mid_malleable_snapshot_carries_work_phase_lifecycles(self):
        _, mid_malleable = hostile_cuts()
        world = SimWorld(make_config())
        world.run_events_until(mid_malleable[len(mid_malleable) // 2])
        snap = capture(world)
        lifecycles = snap.state["rm"]["lifecycles"]
        assert lifecycles, "FSM lifecycles must appear in the state tree"
        working = [s for s in lifecycles.values() if s["phase"] == "work"]
        assert working
        # The work timer is live: the retimed segment end is on the heap.
        assert all(
            s["timer"] is not None and not s["timer"]["cancelled"] for s in working
        )
