"""Unit tests for the snapshot core: capture, verified restore, digests."""

import pytest

from repro.api import SimulationConfig, TelemetryConfig
from repro.errors import ConfigurationError
from repro.snapshot import (
    SimWorld,
    Snapshot,
    SnapshotError,
    canonical_state_json,
    capture,
    capture_state,
    first_divergence,
    restore,
    state_digest,
)
from tests.snapshot.helpers import straight_run

CONFIG = SimulationConfig(
    rm="eslurm", n_nodes=32, n_satellites=2, seed=3, n_jobs=20, horizon_s=86_400.0
)


def paused_world(k=9000):
    # 9000 events is mid-day for this config: jobs queued and running.
    world = SimWorld(CONFIG)
    world.run_events_until(k)
    return world


class TestCaptureBasics:
    def test_capture_is_purely_observational(self):
        (trace_hash, payload), n_events = straight_run(CONFIG)
        world = SimWorld(CONFIG)
        digest = world.attach_trace_digest()
        world.run_events_until(40)
        capture(world, detach=True)  # must not perturb the run
        world.run_to_horizon()
        assert digest.hexdigest() == trace_hash
        assert world.sim.events_processed == n_events
        from repro.api import canonical_json

        assert canonical_json(world.final_payload()) == payload

    def test_snapshot_records_boundary_and_digest(self):
        world = paused_world(50)
        snapshot = capture(world)
        assert snapshot.event_index == 50
        assert snapshot.sim_now == world.sim.now
        assert snapshot.digest == state_digest(snapshot.state)
        assert snapshot.config is CONFIG

    def test_warm_world_is_consume_once(self):
        world = paused_world()
        snapshot = capture(world)
        assert snapshot.warm
        assert snapshot.take_world() is world
        assert not snapshot.warm
        assert snapshot.take_world() is None

    def test_detach_drops_live_world(self):
        world = paused_world()
        assert not capture(world, detach=True).warm
        snapshot = capture(world)
        assert snapshot.detach() is snapshot
        assert not snapshot.warm

    def test_telemetry_worlds_refused(self):
        config = SimulationConfig(
            rm="slurm", n_nodes=16, n_jobs=5, horizon_s=600.0,
            telemetry=TelemetryConfig(enabled=True),
        )
        with pytest.raises(ConfigurationError, match="telemetry"):
            SimWorld(config)


class TestStateWalk:
    def test_state_tree_is_canonical_json(self):
        state = capture_state(paused_world())
        # round-trips through the canonical form without information loss
        import json

        assert json.loads(canonical_state_json(state)) == state
        assert state_digest(state).startswith("sha256:")

    def test_first_divergence_names_the_leaf(self):
        a = {"x": {"y": [1, 2, 3]}, "z": 5}
        assert first_divergence(a, {"x": {"y": [1, 2, 3]}, "z": 5}) is None
        assert first_divergence(a, {"x": {"y": [1, 9, 3]}, "z": 5}) == (
            "$.x.y[1]", 2, 9,
        )
        assert first_divergence(a, {"x": {"y": [1, 2]}, "z": 5}) == (
            "$.x.y.length", 3, 2,
        )
        assert first_divergence(a, {"x": {"y": [1, 2, 3]}}) == ("$.z", 5, "<absent>")

    def test_identical_boundary_identical_digest(self):
        a = capture_state(paused_world(60))
        b = capture_state(paused_world(60))
        assert state_digest(a) == state_digest(b)
        c = capture_state(paused_world(61))
        assert state_digest(a) != state_digest(c)


class TestRestore:
    def test_restore_verifies_and_reaches_boundary(self):
        world = paused_world(70)
        snapshot = capture(world, detach=True)
        rebuilt = restore(snapshot)
        assert rebuilt.sim.events_processed == 70
        assert rebuilt.sim.now == snapshot.sim_now
        assert state_digest(capture_state(rebuilt)) == snapshot.digest

    def test_restore_leaves_warm_world_attached(self):
        world = paused_world()
        snapshot = capture(world)
        restore(snapshot)
        assert snapshot.warm  # cold restores never consume the live world

    def test_tampered_state_raises_with_divergent_path(self):
        snapshot = capture(paused_world(50), detach=True)
        # Simulate replay divergence: the captured record disagrees with
        # what the rebuilt world will deterministically reproduce.
        snapshot.state["queue"]["demand"] += 7
        snapshot.digest = state_digest(snapshot.state)
        with pytest.raises(SnapshotError, match=r"\$\.queue\.demand"):
            restore(snapshot)

    def test_unreachable_event_index_raises(self):
        world = SimWorld(CONFIG)
        world.run_to_horizon()
        total = world.sim.events_processed
        snapshot = Snapshot(
            config=CONFIG,
            event_index=total + 1000,  # beyond the day's event supply
            sim_now=world.sim.now,
            state={},
            digest="sha256:0",
        )
        with pytest.raises(SnapshotError, match="diverged"):
            restore(snapshot, verify=False)

    def test_two_cold_restores_are_independent(self):
        # Two worlds restored from ONE snapshot must not influence each
        # other — running the first cannot move the second's outcome.
        snapshot = capture(paused_world(50), detach=True)
        first = restore(snapshot)
        first.run_to_horizon()  # burn the first world completely
        second = restore(snapshot)
        second.run_to_horizon()
        from repro.api import canonical_json

        assert canonical_json(first.final_payload()) == canonical_json(
            second.final_payload()
        )
