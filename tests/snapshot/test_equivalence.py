"""The equivalence property: resume-from-snapshot == the straight run.

For any event boundary ``k`` — including the degenerate ``k=0`` (before
anything ran) and ``k=last`` (nothing left to resume) — the golden
trace hash and the canonical final payload of the split run must be
byte-identical to the straight run's, warm and cold alike, on both
backends.  The default tier sweeps five seeds per backend with
hypothesis choosing the cut; ``--slow`` widens the sweep.
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SimulationConfig
from repro.snapshot import SimWorld
from tests.snapshot.helpers import cold_split_run, straight_run, warm_split_run

SEEDS = (0, 1, 2, 3, 4)
SLOW_SEEDS = tuple(range(5, 15))

RMS = ("slurm", "eslurm")


def make_config(rm, seed):
    # A full-day horizon: the synthetic trace anchors submissions to
    # diurnal hours, so shorter horizons would sweep empty machines.
    return SimulationConfig(
        rm=rm,
        n_nodes=32,
        n_satellites=2,
        seed=seed,
        failures=rm == "eslurm",  # exercise fault machinery on one arm
        n_jobs=30,
        horizon_s=86_400.0,
    )


@lru_cache(maxsize=None)
def straight(rm, seed):
    return straight_run(make_config(rm, seed))


def assert_split_equivalent(rm, seed, k):
    expected, _ = straight(rm, seed)
    snapshot, warm = warm_split_run(make_config(rm, seed), k)
    assert warm == expected, f"{rm} seed={seed} k={k}: warm resume diverged"
    cold = cold_split_run(snapshot)
    assert cold == expected, f"{rm} seed={seed} k={k}: cold restore diverged"


class TestSplitEquivalence:
    @pytest.mark.parametrize("rm", RMS)
    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_random_event_boundary(self, rm, data):
        seed = data.draw(st.sampled_from(SEEDS))
        _, n_events = straight(rm, seed)
        k = data.draw(st.integers(0, n_events))
        assert_split_equivalent(rm, seed, k)

    @pytest.mark.parametrize("rm", RMS)
    @pytest.mark.parametrize("seed", [SEEDS[0], SEEDS[-1]])
    def test_degenerate_boundaries(self, rm, seed):
        _, n_events = straight(rm, seed)
        assert_split_equivalent(rm, seed, 0)  # nothing replayed
        assert_split_equivalent(rm, seed, n_events)  # nothing resumed

    @pytest.mark.slow
    @pytest.mark.parametrize("rm", RMS)
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_wide_seed_sweep(self, rm, seed):
        _, n_events = straight(rm, seed)
        for k in sorted({0, n_events // 3, n_events // 2, n_events}):
            assert_split_equivalent(rm, seed, k)


@lru_cache(maxsize=None)
def cohort_cuts(rm, seed):
    """Boundaries that land *inside* a same-timestamp cohort.

    A cut ``k`` is mid-cohort when events ``k-1`` and ``k`` share a
    timestamp: the replay half pauses with the rest of the cohort still
    on the heap, and the resumed run's batched kernel must pick the
    remainder up exactly where serial ``step()`` left it.
    """
    world = SimWorld(make_config(rm, seed))
    times = []
    world.sim.add_trace_hook(lambda when, prio, seq: times.append(when))
    world.run_to_horizon()
    return tuple(k for k in range(1, len(times)) if times[k] == times[k - 1])


class TestMidCohortBoundaries:
    @pytest.mark.parametrize("rm", RMS)
    def test_fixed_cuts_inside_cohorts(self, rm):
        seed = SEEDS[0]
        cuts = cohort_cuts(rm, seed)
        assert cuts, "scenario must contain same-timestamp cohorts"
        for k in sorted({cuts[0], cuts[len(cuts) // 2], cuts[-1]}):
            assert_split_equivalent(rm, seed, k)

    @pytest.mark.parametrize("rm", RMS)
    @given(data=st.data())
    @settings(max_examples=6, deadline=None)
    def test_random_cut_inside_a_cohort(self, rm, data):
        seed = data.draw(st.sampled_from(SEEDS))
        cuts = cohort_cuts(rm, seed)
        if not cuts:
            return
        k = data.draw(st.sampled_from(cuts))
        assert_split_equivalent(rm, seed, k)
