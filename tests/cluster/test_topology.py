"""Tests for the rack/chassis/board topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.topology import HopLevel, Topology
from repro.errors import ConfigurationError

TOPO = Topology(nodes_per_board=8, boards_per_chassis=16, chassis_per_rack=4)
NODES_PER_RACK = 8 * 16 * 4  # 512


class TestCoordinates:
    def test_node_zero(self):
        assert TOPO.coordinates(0) == (0, 0, 0)

    def test_board_boundary(self):
        assert TOPO.coordinates(7)[2] == 0
        assert TOPO.coordinates(8)[2] == 1

    def test_rack_boundary(self):
        assert TOPO.coordinates(NODES_PER_RACK - 1)[0] == 0
        assert TOPO.coordinates(NODES_PER_RACK)[0] == 1

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            TOPO.coordinates(-1)


class TestHopLevel:
    def test_same_node(self):
        assert TOPO.hop_level(5, 5) is HopLevel.SAME_NODE

    def test_same_board(self):
        assert TOPO.hop_level(0, 7) is HopLevel.SAME_BOARD

    def test_same_chassis(self):
        assert TOPO.hop_level(0, 8) is HopLevel.SAME_CHASSIS

    def test_same_rack(self):
        assert TOPO.hop_level(0, TOPO.nodes_per_chassis) is HopLevel.SAME_RACK

    def test_cross_rack(self):
        assert TOPO.hop_level(0, NODES_PER_RACK) is HopLevel.CROSS_RACK

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_symmetry(self, a, b):
        assert TOPO.hop_level(a, b) == TOPO.hop_level(b, a)

    @given(st.integers(0, 10_000))
    def test_reflexive(self, a):
        assert TOPO.hop_level(a, a) is HopLevel.SAME_NODE


class TestHelpers:
    def test_nodes_in_rack_full(self):
        r = TOPO.nodes_in_rack(0, total_nodes=2048)
        assert len(r) == NODES_PER_RACK

    def test_nodes_in_rack_clipped(self):
        r = TOPO.nodes_in_rack(0, total_nodes=100)
        assert len(r) == 100

    def test_nodes_in_rack_beyond_cluster(self):
        assert len(TOPO.nodes_in_rack(9, total_nodes=100)) == 0

    def test_racks_for(self):
        assert TOPO.racks_for(1) == 1
        assert TOPO.racks_for(NODES_PER_RACK) == 1
        assert TOPO.racks_for(NODES_PER_RACK + 1) == 2

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(nodes_per_board=0)


#: irregular layouts (tiny boards, degenerate 1-wide levels) crossed
#: with cluster sizes that do not divide evenly into any container
topologies = st.builds(
    Topology,
    nodes_per_board=st.integers(1, 8),
    boards_per_chassis=st.integers(1, 8),
    chassis_per_rack=st.integers(1, 4),
)


class TestPropertySweep:
    """Edge-case sweep: single-rack clusters, partial racks, odd sizes."""

    @given(topologies, st.integers(0, 5000))
    def test_coordinates_consistent_with_hop_level(self, topo, nid):
        rack, chassis, board = topo.coordinates(nid)
        assert board // topo.boards_per_chassis == chassis
        assert chassis // topo.chassis_per_rack == rack

    @given(topologies, st.integers(0, 5000), st.integers(0, 5000))
    def test_hop_level_matches_coordinates(self, topo, a, b):
        level = topo.hop_level(a, b)
        ra, ca, ba = topo.coordinates(a)
        rb, cb, bb = topo.coordinates(b)
        if a == b:
            assert level is HopLevel.SAME_NODE
        elif ba == bb:
            assert level is HopLevel.SAME_BOARD
        elif ca == cb:
            assert level is HopLevel.SAME_CHASSIS
        elif ra == rb:
            assert level is HopLevel.SAME_RACK
        else:
            assert level is HopLevel.CROSS_RACK

    @given(topologies, st.integers(1, 3000))
    def test_racks_partition_cluster(self, topo, total):
        # Every node lands in exactly one rack; the last rack may be
        # partial (total not divisible by the rack size) but never empty.
        racks = topo.racks_for(total)
        seen = []
        for rack in range(racks):
            ids = topo.nodes_in_rack(rack, total)
            assert len(ids) >= 1
            assert all(topo.rack_of(nid) == rack for nid in ids)
            seen.extend(ids)
        assert seen == list(range(total))
        assert len(topo.nodes_in_rack(racks, total)) == 0

    @given(topologies, st.integers(1, 3000))
    def test_last_rack_size(self, topo, total):
        racks = topo.racks_for(total)
        last = topo.nodes_in_rack(racks - 1, total)
        remainder = total % topo.nodes_per_rack
        assert len(last) == (remainder if remainder else topo.nodes_per_rack)

    @given(st.integers(1, 512), st.integers(0, 511), st.integers(0, 511))
    def test_single_rack_cluster_never_crosses_racks(self, total, a, b):
        # Any cluster that fits one rack: no pair can be CROSS_RACK.
        topo = Topology(nodes_per_board=8, boards_per_chassis=16, chassis_per_rack=4)
        a, b = a % total, b % total
        assert total <= topo.nodes_per_rack
        assert topo.hop_level(a, b) is not HopLevel.CROSS_RACK

    @given(topologies, st.integers(1, 3000))
    def test_cluster_not_divisible_by_chassis(self, topo, total):
        # A cluster size straddling a chassis boundary must still give
        # every node a valid chassis whose global index is in range.
        n_chassis = -(-total // topo.nodes_per_chassis)
        for nid in (0, total // 2, total - 1):
            _, chassis, _ = topo.coordinates(nid)
            assert 0 <= chassis < n_chassis
