"""Tests for the rack/chassis/board topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.topology import HopLevel, Topology
from repro.errors import ConfigurationError

TOPO = Topology(nodes_per_board=8, boards_per_chassis=16, chassis_per_rack=4)
NODES_PER_RACK = 8 * 16 * 4  # 512


class TestCoordinates:
    def test_node_zero(self):
        assert TOPO.coordinates(0) == (0, 0, 0)

    def test_board_boundary(self):
        assert TOPO.coordinates(7)[2] == 0
        assert TOPO.coordinates(8)[2] == 1

    def test_rack_boundary(self):
        assert TOPO.coordinates(NODES_PER_RACK - 1)[0] == 0
        assert TOPO.coordinates(NODES_PER_RACK)[0] == 1

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            TOPO.coordinates(-1)


class TestHopLevel:
    def test_same_node(self):
        assert TOPO.hop_level(5, 5) is HopLevel.SAME_NODE

    def test_same_board(self):
        assert TOPO.hop_level(0, 7) is HopLevel.SAME_BOARD

    def test_same_chassis(self):
        assert TOPO.hop_level(0, 8) is HopLevel.SAME_CHASSIS

    def test_same_rack(self):
        assert TOPO.hop_level(0, TOPO.nodes_per_chassis) is HopLevel.SAME_RACK

    def test_cross_rack(self):
        assert TOPO.hop_level(0, NODES_PER_RACK) is HopLevel.CROSS_RACK

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_symmetry(self, a, b):
        assert TOPO.hop_level(a, b) == TOPO.hop_level(b, a)

    @given(st.integers(0, 10_000))
    def test_reflexive(self, a):
        assert TOPO.hop_level(a, a) is HopLevel.SAME_NODE


class TestHelpers:
    def test_nodes_in_rack_full(self):
        r = TOPO.nodes_in_rack(0, total_nodes=2048)
        assert len(r) == NODES_PER_RACK

    def test_nodes_in_rack_clipped(self):
        r = TOPO.nodes_in_rack(0, total_nodes=100)
        assert len(r) == 100

    def test_nodes_in_rack_beyond_cluster(self):
        assert len(TOPO.nodes_in_rack(9, total_nodes=100)) == 0

    def test_racks_for(self):
        assert TOPO.racks_for(1) == 1
        assert TOPO.racks_for(NODES_PER_RACK) == 1
        assert TOPO.racks_for(NODES_PER_RACK + 1) == 2

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(nodes_per_board=0)
