"""Tests for the health-monitoring / alert subsystem."""

import pytest

from repro.cluster import ClusterSpec, FailureModel
from repro.cluster.monitoring import MonitoringConfig
from repro.errors import ConfigurationError
from repro.simkit import Simulator

HOUR = 3600.0
DAY = 24 * HOUR


def build(n=100, monitoring=None, model=None, seed=0):
    sim = Simulator(seed=seed)
    spec = ClusterSpec(
        n_nodes=n,
        monitoring=monitoring or MonitoringConfig(),
        failure_model=model or FailureModel.disabled(),
    )
    return sim, spec.build(sim)


class TestConfig:
    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            MonitoringConfig(recall=1.5)
        with pytest.raises(ConfigurationError):
            MonitoringConfig(false_alarm_per_node_hour=-1)
        with pytest.raises(ConfigurationError):
            MonitoringConfig(alert_ttl_hours=0)
        with pytest.raises(ConfigurationError):
            MonitoringConfig(precursor_fraction=0.0)


class TestAlerts:
    def test_raise_alert_marks_predicted(self):
        sim, cluster = build()
        cluster.monitor.raise_alert(5)
        assert cluster.monitor.predicted_failed() == {5}
        assert cluster.monitor.predicted_failed(among=[1, 5, 9]) == {5}

    def test_alert_expires_after_ttl(self):
        sim, cluster = build(monitoring=MonitoringConfig(alert_ttl_hours=1.0))
        cluster.monitor.raise_alert(3)
        sim.run(until=0.5 * HOUR)
        assert 3 in cluster.monitor.predicted_failed()
        sim.run(until=2 * HOUR)
        assert cluster.monitor.predicted_failed() == set()

    def test_alert_carries_indicator(self):
        sim, cluster = build()
        cluster.monitor.raise_alert(1, indicator="temperature")
        assert cluster.monitor.alerts[0].indicator == "temperature"
        cluster.monitor.raise_alert(2)  # sampled indicator
        assert cluster.monitor.alerts[1].indicator


class TestPrecursorAlerts:
    def test_perfect_recall_alerts_before_failure(self):
        sim, cluster = build(monitoring=MonitoringConfig(recall=1.0))
        cluster.monitor.on_failure_scheduled([7, 8], at=sim.now + 100.0)
        sim.run(until=200.0)
        assert {7, 8} <= cluster.monitor.predicted_failed()

    def test_zero_recall_never_alerts(self):
        sim, cluster = build(monitoring=MonitoringConfig(recall=0.0))
        cluster.monitor.on_failure_scheduled(list(range(50)), at=sim.now + 10.0)
        sim.run(until=100.0)
        assert cluster.monitor.predicted_failed() == set()

    def test_recall_fraction_observed(self):
        sim, cluster = build(n=2000, monitoring=MonitoringConfig(recall=0.8), seed=5)
        cluster.monitor.on_failure_scheduled(list(range(2000)), at=sim.now + 1.0)
        sim.run(until=10.0)
        frac = len(cluster.monitor.predicted_failed()) / 2000
        assert 0.75 < frac < 0.85

    def test_immediate_failure_alerts_now(self):
        sim, cluster = build(monitoring=MonitoringConfig(recall=1.0))
        cluster.monitor.on_failure_scheduled([1], at=sim.now)  # zero lead
        assert 1 in cluster.monitor.predicted_failed()


class TestFalseAlarms:
    def test_false_alarm_rate(self):
        # 100 nodes * 0.01/h = 1/h -> ~24/day
        cfg = MonitoringConfig(false_alarm_per_node_hour=0.01)
        sim, cluster = build(n=100, monitoring=cfg, seed=6)
        cluster.monitor.start()
        sim.run(until=10 * DAY)
        count = cluster.monitor.alert_count()
        assert 150 < count < 350
        assert cluster.monitor.spurious_fraction() == 1.0

    def test_start_noop_when_rate_zero(self):
        cfg = MonitoringConfig(false_alarm_per_node_hour=0.0)
        sim, cluster = build(monitoring=cfg)
        cluster.monitor.start()
        sim.run(until=DAY)
        assert cluster.monitor.alert_count() == 0


class TestIntegrationWithInjector:
    def test_failures_produce_precursor_alerts(self):
        model = FailureModel(mtbf_node_hours=50.0, repair_hours=1.0, burst_per_day=0)
        cfg = MonitoringConfig(recall=1.0)
        sim = Simulator(seed=7)
        cluster = ClusterSpec(n_nodes=100, failure_model=model, monitoring=cfg).build(sim)
        cluster.failures.start()
        sim.run(until=2 * DAY)
        failed_ever = set()
        for ev in cluster.failures.events:
            failed_ever.update(ev.node_ids)
        assert failed_ever
        alerted_ever = {a.node_id for a in cluster.monitor.alerts}
        # recall=1.0: every failed node must have alerted at some point
        assert failed_ever <= alerted_ever
