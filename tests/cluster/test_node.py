"""Tests for the node model."""

import pytest

from repro.cluster.node import HardwareSpec, Node, NodeRole, NodeState
from repro.errors import ClusterError


def make_node(**kw):
    defaults = dict(node_id=0, name="cn00000")
    defaults.update(kw)
    return Node(**defaults)


class TestNodeValidation:
    def test_negative_id_rejected(self):
        with pytest.raises(ClusterError):
            make_node(node_id=-1)

    def test_zero_cores_rejected(self):
        with pytest.raises(ClusterError):
            make_node(cores=0)

    def test_defaults(self):
        n = make_node()
        assert n.role is NodeRole.COMPUTE
        assert n.state is NodeState.UP
        assert n.responsive
        assert n.allocatable


class TestNodeTransitions:
    def test_fail_and_recover(self):
        n = make_node()
        n.fail()
        assert n.state is NodeState.DOWN
        assert not n.responsive
        assert not n.allocatable
        n.recover()
        assert n.state is NodeState.UP

    def test_fail_idempotent(self):
        n = make_node()
        n.fail()
        n.fail()
        assert n.state is NodeState.DOWN

    def test_recover_only_from_down(self):
        n = make_node()
        n.recover()  # UP stays UP
        assert n.state is NodeState.UP
        n.drain()
        n.recover()  # DRAINED is not auto-recovered
        assert n.state is NodeState.DRAINED

    def test_drain_blocks_fail(self):
        n = make_node()
        n.drain()
        n.fail()
        assert n.state is NodeState.DRAINED
        n.undrain()
        assert n.state is NodeState.UP

    def test_allocate_release_cycle(self):
        n = make_node()
        n.allocate(job_id=42)
        assert n.state is NodeState.ALLOC
        assert n.running_job == 42
        assert n.responsive  # allocated nodes still answer messages
        assert not n.allocatable
        n.release()
        assert n.state is NodeState.UP
        assert n.running_job is None

    def test_double_allocate_rejected(self):
        n = make_node()
        n.allocate(1)
        with pytest.raises(ClusterError):
            n.allocate(2)

    def test_allocate_down_node_rejected(self):
        n = make_node()
        n.fail()
        with pytest.raises(ClusterError):
            n.allocate(1)

    def test_fail_while_allocated_then_recover_clears_job(self):
        n = make_node()
        n.allocate(7)
        n.fail()
        assert n.running_job == 7  # job binding survives until recovery
        n.recover()
        assert n.running_job is None


class TestHardwareSpec:
    def test_invalid_spec_rejected(self):
        with pytest.raises(ClusterError):
            HardwareSpec(cores=0)

    def test_frozen(self):
        hw = HardwareSpec()
        with pytest.raises(AttributeError):
            hw.cores = 5  # type: ignore[misc]
