"""Property-based tests for the failure injector's ordering guarantees.

Two contracts the FP-Tree and maintenance machinery lean on:

* the monitor learns about every scheduled fault *strictly before* the
  fault takes effect (Section IV-C's prediction hook);
* repairing an earlier fault never resurrects a node inside a
  maintenance window — the node stays dark until the window closes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.cluster.failures import FailureModel
from repro.simkit import Simulator

N_NODES = 16


def build(seed=0):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(
        n_nodes=N_NODES, n_satellites=1, failure_model=FailureModel.disabled()
    ).build(sim)
    return sim, cluster


@st.composite
def fault_plans(draw):
    plans = []
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["point", "burst", "maintenance"]))
        at = draw(st.floats(10.0, 3000.0))
        ids = tuple(sorted(draw(
            st.sets(st.integers(0, N_NODES - 1), min_size=1, max_size=4)
        )))
        duration = draw(st.floats(30.0, 2000.0))
        plans.append((kind, at, ids, duration))
    return plans


class TestAnnounceBeforeEffect:
    @given(fault_plans())
    @settings(max_examples=60, deadline=None)
    def test_monitor_informed_strictly_before_every_fault(self, plans):
        sim, cluster = build()
        announces = []
        original = cluster.monitor.on_failure_scheduled
        cluster.monitor.on_failure_scheduled = lambda node_ids, at: (
            announces.append((tuple(node_ids), at, sim.now)),
            original(node_ids, at=at),
        )[-1]
        effects = []
        cluster.failures.subscribe(
            lambda kind, node_ids, when: kind != "recover"
            and effects.append((tuple(node_ids), when))
        )
        for kind, at, ids, duration in plans:
            cluster.failures.schedule_fault(kind, at, ids, duration)
        sim.run(until=7000.0)

        assert len(announces) == len(plans)
        for ids, at, announced_at in announces:
            assert announced_at < at  # strictly before the fault lands
        # Every applied fault's nodes were announced for that very time.
        announced = {(ids, at) for ids, at, _ in announces}
        for ids, when in effects:
            assert any(
                set(ids) <= set(a_ids) and a_at == when
                for a_ids, a_at in announced
            ), (ids, when)

    @given(fault_plans())
    @settings(max_examples=40, deadline=None)
    def test_injector_log_matches_subscriber_stream(self, plans):
        sim, cluster = build()
        effects = []
        cluster.failures.subscribe(
            lambda kind, node_ids, when: kind != "recover"
            and effects.append(tuple(node_ids))
        )
        for kind, at, ids, duration in plans:
            cluster.failures.schedule_fault(kind, at, ids, duration)
        sim.run(until=7000.0)
        assert [ev.node_ids for ev in cluster.failures.events] == effects
        assert cluster.failures.failures_injected() == sum(len(e) for e in effects)


class TestMaintenanceWindowIntegrity:
    @given(
        window_at=st.floats(200.0, 1000.0),
        window_dur=st.floats(300.0, 2000.0),
        fault_lead=st.floats(10.0, 150.0),
        repair_frac=st.floats(0.1, 0.9),
        node=st.integers(0, N_NODES - 1),
        extra=fault_plans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_repair_inside_window_never_resurrects(
        self, window_at, window_dur, fault_lead, repair_frac, node, extra
    ):
        """A point fault whose repair timer lands inside a maintenance
        window must not bring the node up before the window ends."""
        sim, cluster = build()
        window_end = window_at + window_dur
        fault_at = window_at - fault_lead
        # Repair lands strictly inside the window.
        repair = (window_at - fault_at) + repair_frac * window_dur
        cluster.failures.schedule_fault("point", fault_at, (node,), repair)
        cluster.failures.schedule_fault(
            "maintenance", window_at, (node,), window_dur
        )
        for kind, at, ids, duration in extra:
            cluster.failures.schedule_fault(kind, at, ids, duration)

        target = cluster.node(node)
        observed_end = cluster.failures.maintenance_until(node)
        assert observed_end >= window_end

        def assert_dark_inside_window():
            # Only the original window is guaranteed dark: extra plans may
            # extend maintenance_until with disjoint later windows.
            if window_at < sim.now < window_end:
                assert not target.responsive, (
                    f"node {node} resurrected at {sim.now} inside "
                    f"maintenance window ({window_at}, {window_end})"
                )

        sim.add_probe(assert_dark_inside_window)
        horizon = max(
            [observed_end] + [at + duration for _, at, _, duration in extra]
        )
        sim.run(until=horizon + 10.0)
        # After every window and repair has elapsed the node is back.
        assert target.responsive

    @given(
        window_at=st.floats(100.0, 500.0),
        window_dur=st.floats(200.0, 1000.0),
        node=st.integers(0, N_NODES - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_window_end_recovery_is_not_deferred(self, window_at, window_dur, node):
        """The maintenance window's own end-of-window recovery proceeds
        (the deferral guard is strict, not off by one)."""
        sim, cluster = build()
        cluster.failures.schedule_fault("maintenance", window_at, (node,), window_dur)
        sim.run(until=window_at + window_dur + 1.0)
        assert cluster.node(node).responsive
