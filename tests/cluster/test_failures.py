"""Tests for failure injection."""

import pytest

from repro.cluster import ClusterSpec, FailureModel
from repro.errors import ConfigurationError
from repro.simkit import Simulator

HOUR = 3600.0
DAY = 24 * HOUR


def build(n=100, model=None, seed=0):
    sim = Simulator(seed=seed)
    spec = ClusterSpec(n_nodes=n, failure_model=model or FailureModel())
    return sim, spec.build(sim)


class TestFailureModel:
    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            FailureModel(mtbf_node_hours=0)
        with pytest.raises(ConfigurationError):
            FailureModel(repair_hours=-1)
        with pytest.raises(ConfigurationError):
            FailureModel(burst_size_mean=0)

    def test_disabled_model_injects_nothing(self):
        sim, cluster = build(model=FailureModel.disabled())
        cluster.failures.start()
        sim.run(until=10 * DAY)
        assert cluster.failures.events == []


class TestPointFailures:
    def test_rate_roughly_matches_mtbf(self):
        # 100 nodes, MTBF 100 h -> ~1 failure/h -> ~240 over 10 days
        model = FailureModel(mtbf_node_hours=100.0, repair_hours=0.5, burst_per_day=0)
        sim, cluster = build(n=100, model=model, seed=1)
        cluster.failures.start()
        sim.run(until=10 * DAY)
        count = cluster.failures.failures_injected()
        assert 150 < count < 350

    def test_nodes_recover(self):
        model = FailureModel(mtbf_node_hours=50.0, repair_hours=0.1, burst_per_day=0)
        sim, cluster = build(n=50, model=model, seed=2)
        cluster.failures.start()
        sim.run(until=2 * DAY)
        assert cluster.failures.failures_injected() > 0
        # with 6-minute repairs almost everything should be back up
        assert cluster.failed_fraction() < 0.1

    def test_listener_sees_failures_and_recoveries(self):
        model = FailureModel(mtbf_node_hours=20.0, repair_hours=0.1, burst_per_day=0)
        sim, cluster = build(n=50, model=model, seed=3)
        seen = []
        cluster.failures.subscribe(lambda kind, ids, time: seen.append(kind))
        cluster.failures.start()
        sim.run(until=DAY)
        assert "point" in seen
        assert "recover" in seen


class TestBurstFailures:
    def test_burst_takes_out_block(self):
        model = FailureModel(
            mtbf_node_hours=1e12,  # effectively no point failures
            burst_per_day=5.0,
            burst_size_mean=10.0,
            repair_hours=100.0,  # stay down so we can observe
        )
        sim, cluster = build(n=200, model=model, seed=4)
        cluster.failures.start()
        sim.run(until=2 * DAY)
        bursts = [ev for ev in cluster.failures.events if ev.kind == "burst"]
        assert bursts
        for ev in bursts:
            ids = list(ev.node_ids)
            assert ids == list(range(ids[0], ids[0] + len(ids)))  # contiguous


class TestMaintenance:
    def test_scheduled_maintenance(self):
        sim, cluster = build(n=100, model=FailureModel.disabled())
        cluster.failures.schedule_maintenance(at=HOUR, node_ids=range(10, 30), duration=HOUR)
        sim.run(until=1.5 * HOUR)
        assert cluster.down_ids() == set(range(10, 30))
        sim.run(until=3 * HOUR)
        assert cluster.down_ids() == set()
        assert cluster.failures.events[0].kind == "maintenance"

    def test_empty_maintenance_rejected(self):
        sim, cluster = build()
        with pytest.raises(ConfigurationError):
            cluster.failures.schedule_maintenance(at=1.0, node_ids=[], duration=1.0)

    def test_start_idempotent(self):
        sim, cluster = build(n=10)
        cluster.failures.start()
        cluster.failures.start()  # second call must not double processes
        before = len(sim._heap)
        assert before >= 1


class TestDeterminism:
    def test_same_seed_same_failure_log(self):
        model = FailureModel(mtbf_node_hours=100.0, burst_per_day=1.0)
        logs = []
        for _ in range(2):
            sim, cluster = build(n=100, model=model, seed=9)
            cluster.failures.start()
            sim.run(until=5 * DAY)
            logs.append([(ev.time, ev.kind, ev.node_ids) for ev in cluster.failures.events])
        assert logs[0] == logs[1]
