"""Tests for ClusterSpec and the live Cluster."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeRole
from repro.errors import ClusterError, ConfigurationError
from repro.simkit import Simulator


def small_cluster(n=64, sats=2, seed=0):
    sim = Simulator(seed=seed)
    return sim, ClusterSpec(n_nodes=n, n_satellites=sats).build(sim)


class TestSpec:
    def test_presets(self):
        assert ClusterSpec.tianhe2a().n_nodes == 16_384
        assert ClusterSpec.tianhe2a(n_nodes=4096).n_nodes == 4096
        assert ClusterSpec.ng_tianhe().n_nodes == 20_480
        assert ClusterSpec.ng_tianhe().n_satellites == 20

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(n_nodes=0)
        with pytest.raises(ConfigurationError):
            ClusterSpec(n_satellites=-1)

    def test_with_satellites(self):
        spec = ClusterSpec(n_nodes=10).with_satellites(7)
        assert spec.n_satellites == 7
        assert spec.n_nodes == 10

    def test_total_cores(self):
        spec = ClusterSpec.tianhe2a(n_nodes=100)
        assert spec.total_cores == 100 * 12


class TestCluster:
    def test_node_id_layout(self):
        _, cluster = small_cluster(n=64, sats=3)
        assert [n.node_id for n in cluster.nodes] == list(range(64))
        assert cluster.master.node_id == 64
        assert [s.node_id for s in cluster.satellites] == [65, 66, 67]

    def test_roles(self):
        _, cluster = small_cluster()
        assert cluster.master.role is NodeRole.MASTER
        assert all(s.role is NodeRole.SATELLITE for s in cluster.satellites)
        assert all(n.role is NodeRole.COMPUTE for n in cluster.nodes)

    def test_lookup(self):
        _, cluster = small_cluster()
        assert cluster.node(0).name == "cn00000"
        with pytest.raises(ClusterError):
            cluster.node(9999)

    def test_topology_coordinates_assigned(self):
        _, cluster = small_cluster(n=20)
        n9 = cluster.node(9)
        assert (n9.rack, n9.chassis, n9.board) == cluster.topology.coordinates(9)

    def test_up_and_down_queries(self):
        _, cluster = small_cluster(n=10)
        assert len(cluster.up_nodes()) == 10
        cluster.fail_nodes([2, 5])
        assert cluster.down_ids() == {2, 5}
        assert cluster.failed_fraction() == 0.2
        assert not cluster.is_responsive(2)
        cluster.recover_nodes([2])
        assert cluster.down_ids() == {5}

    def test_fail_fraction_deterministic(self):
        _, c1 = small_cluster(n=100, seed=3)
        _, c2 = small_cluster(n=100, seed=3)
        ids1 = c1.fail_fraction(0.1)
        ids2 = c2.fail_fraction(0.1)
        assert ids1 == ids2
        assert len(ids1) == 10

    def test_fail_fraction_bounds(self):
        _, cluster = small_cluster()
        with pytest.raises(ClusterError):
            cluster.fail_fraction(1.5)
        assert cluster.fail_fraction(0.0) == []

    def test_all_nodes_iteration_order(self):
        _, cluster = small_cluster(n=5, sats=2)
        ids = [n.node_id for n in cluster.all_nodes()]
        assert ids == [0, 1, 2, 3, 4, 5, 6, 7]
