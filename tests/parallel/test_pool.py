"""The sweep engine: ordering, warm reuse, crash containment, retry-once.

Everything here drives the real spawn-based pool through the
``selftest`` task kind, so poisoned cells exercise the exact in-worker
and hard-death paths the production sweeps rely on.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    SweepError,
    Task,
    register_kind,
    resolve_jobs,
    resolve_kind,
    run_tasks,
    task_kinds,
)


def ok_cell(i):
    return Task(id=f"cell-{i}", kind="selftest", spec={"mode": "ok", "payload": i})


class TestRegistry:
    def test_builtin_kinds_cover_every_sweep_surface(self):
        assert {"bench", "chaos", "verify", "experiment", "selftest"} <= set(task_kinds())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown task kind"):
            resolve_kind("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_kind("selftest", lambda spec: spec)


class TestResolveJobs:
    def test_zero_autodetects(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_positive_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(SweepError, match="jobs must be >= 0"):
            resolve_jobs(-1)


class TestInline:
    def test_empty_sweep(self):
        assert run_tasks([]) == []

    def test_results_in_task_order(self):
        results = run_tasks([ok_cell(i) for i in range(4)], jobs=1)
        assert [r.task_id for r in results] == [f"cell-{i}" for i in range(4)]
        assert [r.value["echo"] for r in results] == [0, 1, 2, 3]
        assert all(r.ok and r.worker is None and r.attempts == 1 for r in results)

    def test_inline_runs_in_calling_process(self):
        (result,) = run_tasks([ok_cell(0)], jobs=1)
        assert result.value["pid"] == os.getpid()

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SweepError, match="duplicate task ids"):
            run_tasks([ok_cell(0), ok_cell(0)])

    def test_unknown_kind_fails_fast(self):
        with pytest.raises(ConfigurationError, match="unknown task kind"):
            run_tasks([Task(id="x", kind="nope")])

    def test_raise_is_contained_and_retried_once(self):
        tasks = [ok_cell(0), Task(id="bad", kind="selftest", spec={"mode": "raise"}), ok_cell(2)]
        results = run_tasks(tasks, jobs=1)
        assert [r.ok for r in results] == [True, False, True]
        bad = results[1]
        assert bad.attempts == 2
        assert "poisoned task cell" in (bad.error or "")

    def test_flaky_cell_recovers_on_retry(self, tmp_path):
        marker = str(tmp_path / "flaky.marker")
        (result,) = run_tasks(
            [Task(id="f", kind="selftest", spec={"mode": "flaky", "marker": marker})],
            jobs=1,
        )
        assert result.ok and result.attempts == 2
        assert result.value["recovered"] is True


class TestPool:
    def test_results_in_task_order_with_warm_workers(self):
        results = run_tasks([ok_cell(i) for i in range(8)], jobs=4)
        assert [r.task_id for r in results] == [f"cell-{i}" for i in range(8)]
        assert all(r.ok for r in results)
        pids = {r.value["pid"] for r in results}
        # ran out-of-process, on at most `jobs` warm (reused) workers
        assert os.getpid() not in pids
        assert 1 <= len(pids) <= 4

    def test_raise_poisons_only_its_cell(self):
        tasks = [ok_cell(i) for i in range(5)]
        tasks.insert(2, Task(id="bad", kind="selftest", spec={"mode": "raise"}))
        results = run_tasks(tasks, jobs=3)
        by_id = {r.task_id: r for r in results}
        assert not by_id["bad"].ok
        assert by_id["bad"].attempts == 2
        assert "poisoned task cell" in (by_id["bad"].error or "")
        assert all(by_id[f"cell-{i}"].ok for i in range(5))

    def test_hard_death_charges_only_the_held_cell(self):
        tasks = [ok_cell(i) for i in range(5)]
        tasks.insert(1, Task(id="dead", kind="selftest", spec={"mode": "exit", "code": 13}))
        results = run_tasks(tasks, jobs=2)
        by_id = {r.task_id: r for r in results}
        assert not by_id["dead"].ok
        assert "died (exit code 13)" in (by_id["dead"].error or "")
        assert all(by_id[f"cell-{i}"].ok for i in range(5))

    def test_flaky_cell_recovers_on_retry(self, tmp_path):
        marker = str(tmp_path / "flaky-pool.marker")
        tasks = [ok_cell(0), Task(id="f", kind="selftest", spec={"mode": "flaky", "marker": marker})]
        results = run_tasks(tasks, jobs=2)
        by_id = {r.task_id: r for r in results}
        assert by_id["f"].ok and by_id["f"].attempts == 2
        assert by_id["f"].value["recovered"] is True

    def test_progress_sees_every_cell_exactly_once(self):
        seen = []
        run_tasks([ok_cell(i) for i in range(6)], jobs=3, progress=lambda r: seen.append(r.task_id))
        assert sorted(seen) == [f"cell-{i}" for i in range(6)]

    def test_result_line_renders_failure_detail(self):
        results = run_tasks(
            [Task(id="bad", kind="selftest", spec={"mode": "raise"}), ok_cell(1)], jobs=2
        )
        lines = [r.line() for r in results]
        assert any("FAIL" in line and "poisoned" in line for line in lines)
        assert any("ok" in line and "worker" in line for line in lines)
