"""Sweep surfaces end to end: CLI exit codes, crash surfacing, sweep file.

Poisoning uses ``jobs=1`` (the inline path resolves handlers in-process,
so a monkeypatched ``run_bench``/``run_scenario`` is visible) or raw
``Task`` cells with bad specs (which poison real workers).  Either way
the contract is the same: only the poisoned cell fails, the rest of the
sweep completes, and the failure surfaces in the report and exit code.
"""

import json

import pytest

from repro.bench import load_sweep, run_matrix_sweep, sweep_digest
from repro.bench.runner import run_matrix
from repro.bench.sweep import SWEEP_SCHEMA, render_sweep
from repro.chaos import campaign_cell_id, run_campaign
from repro.cli import main
from repro.errors import ConfigurationError
from repro.parallel import SweepError, Task, run_tasks


def poison_bench(monkeypatch, bad="eslurm-1024"):
    """Make one scenario's ``run_bench`` raise (inline path only)."""
    import repro.bench.runner as runner

    real = runner.run_bench

    def stub(name, seed=0):
        if getattr(name, "name", name) == bad:
            raise RuntimeError("poisoned bench cell")
        return real(name, seed=seed)

    monkeypatch.setattr(runner, "run_bench", stub)


class TestBenchCrashContainment:
    def test_poisoned_cell_contained_rest_completes(self, monkeypatch):
        poison_bench(monkeypatch)
        sweep = run_matrix_sweep(["slurm-1024", "eslurm-1024"], jobs=1)
        assert not sweep.ok
        assert [r.scenario.name for r in sweep.results] == ["slurm-1024"]
        (failure,) = sweep.failures
        assert failure.task_id == "eslurm-1024"
        assert failure.attempts == 2  # retried once before finalising
        assert "poisoned bench cell" in failure.error

    def test_run_matrix_raises_with_cell_detail(self, monkeypatch):
        poison_bench(monkeypatch)
        with pytest.raises(SweepError, match="eslurm-1024.*poisoned bench cell"):
            run_matrix(["slurm-1024", "eslurm-1024"], jobs=1)

    def test_cli_exit_code_and_stderr(self, monkeypatch, capsys):
        poison_bench(monkeypatch)
        rc = main(["bench", "run", "slurm-1024", "eslurm-1024"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "slurm-1024" in captured.out  # the healthy cell still ran
        assert "eslurm-1024" in captured.err and "FAILED after 2 attempt(s)" in captured.err

    def test_poisoned_spec_contained_in_real_workers(self):
        # Bypass run_matrix_sweep's fail-fast to poison an actual worker.
        tasks = [
            Task(id="good", kind="bench", spec={"scenario": "slurm-1024", "seed": 0}),
            Task(id="bad", kind="bench", spec={"scenario": "no-such-scenario", "seed": 0}),
        ]
        results = run_tasks(tasks, jobs=2)
        by_id = {r.task_id: r for r in results}
        assert by_id["good"].ok
        assert not by_id["bad"].ok
        assert "no-such-scenario" in by_id["bad"].error


class TestChaosCrashContainment:
    def poison(self, monkeypatch, bad="failure-storm"):
        import repro.chaos.campaign as campaign

        real = campaign.run_scenario

        def stub(name, seed=0, **kwargs):
            if getattr(name, "name", name) == bad:
                raise RuntimeError("poisoned chaos cell")
            return real(name, seed=seed, **kwargs)

        monkeypatch.setattr(campaign, "run_scenario", stub)

    def test_poisoned_cell_surfaces_in_summary(self, monkeypatch):
        self.poison(monkeypatch)
        outcome = run_campaign(["flapping-node", "failure-storm"], jobs=1)
        assert not outcome.ok
        assert [c.scenario for c in outcome.cells] == ["flapping-node"]
        (failure,) = outcome.failures
        assert failure.task_id == campaign_cell_id("failure-storm", 0)
        summary = outcome.summary_text()
        assert "1 crashed cell(s)" in summary
        assert "CRASHED failure-storm@s0" in summary

    def test_cli_exit_code(self, monkeypatch, capsys):
        self.poison(monkeypatch)
        rc = main(["chaos", "run", "flapping-node", "failure-storm"])
        assert rc == 1
        assert "CRASHED failure-storm@s0" in capsys.readouterr().out


class TestCampaignCli:
    def test_grid_exits_zero_and_renders_summary(self, capsys):
        rc = main(["chaos", "run", "flapping-node", "--seeds", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign: 2 run(s), 0 violation(s), 0 crashed cell(s)" in out

    def test_json_payload_shape(self, capsys):
        rc = main(["chaos", "run", "flapping-node", "--seeds", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["n_cells"] == 2
        assert len(payload["reports"]) == 2
        assert payload["invariant_counts"]

    def test_shrink_rejected_on_grids(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "run", "flapping-node", "--seeds", "2", "--shrink"])


class TestVerifySweepCli:
    def test_seed_sweep_exits_zero(self, capsys):
        rc = main(["verify", "--layer", "metamorphic", "--seeds", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verify sweep: OK" in out and "over 2 seed(s)" in out

    def test_update_golden_rejected_in_sweeps(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify", "--seeds", "2", "--update-golden"])

    def test_json_payload_has_per_seed_reports(self, capsys):
        rc = main(["verify", "--layer", "metamorphic", "--seeds", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert [r["seed"] for r in payload["reports"]] == [0, 1]


class TestSweepFile:
    def test_sweep_verb_writes_valid_file(self, tmp_path, capsys):
        path = tmp_path / "BENCH_sweep.json"
        rc = main(
            ["bench", "sweep", "slurm-1024", "eslurm-1024",
             "--jobs-levels", "1", "--out", str(path)]
        )
        assert rc == 0
        payload = load_sweep(path)
        assert payload["schema"] == SWEEP_SCHEMA
        assert payload["scenarios"] == ["slurm-1024", "eslurm-1024"]
        assert payload["runs"]["1"]["speedup_vs_serial"] == 1.0
        assert "byte-identical" in render_sweep(payload)

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "runs": {"1": {}}}))
        with pytest.raises(ConfigurationError):
            load_sweep(path)

    def test_digest_tracks_payload_bytes(self):
        serial = run_matrix_sweep(["slurm-1024"], seed=0, jobs=1)
        again = run_matrix_sweep(["slurm-1024"], seed=0, jobs=1)
        other = run_matrix_sweep(["slurm-1024"], seed=1, jobs=1)
        assert sweep_digest(serial) == sweep_digest(again)
        assert sweep_digest(serial) != sweep_digest(other)

    def test_checked_in_sweep_file_is_valid(self):
        payload = load_sweep("benchmarks/BENCH_sweep.json")
        assert "1" in payload["runs"]
