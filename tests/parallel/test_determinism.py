"""Parallel-vs-serial byte-identity: the sweep engine's acceptance bar.

Every surface must produce byte-identical output at ``-j 1`` and
``-j 4`` — same ``BENCH_*.json`` text, same chaos report rendering and
payload, same verify payloads — because each cell is a fully seeded,
self-contained run and the merge is a pure function of the task list.
"""

import json

from repro.bench import run_matrix_sweep
from repro.chaos import run_campaign
from repro.oracle import run_verify, run_verify_sweep

BENCH_NAMES = ("slurm-1024", "eslurm-1024")


class TestBenchDeterminism:
    def test_bench_files_byte_identical_j1_vs_j4(self):
        serial = run_matrix_sweep(BENCH_NAMES, seed=0, jobs=1)
        pooled = run_matrix_sweep(BENCH_NAMES, seed=0, jobs=4)
        assert serial.ok and pooled.ok
        assert [r.scenario.name for r in pooled.results] == list(BENCH_NAMES)
        for a, b in zip(serial.results, pooled.results):
            assert a.to_json() == b.to_json()  # the BENCH_*.json bytes

    def test_merged_telemetry_counters_identical(self):
        serial = run_matrix_sweep(BENCH_NAMES, seed=0, jobs=1)
        pooled = run_matrix_sweep(BENCH_NAMES, seed=0, jobs=2)
        merged_serial = serial.merged_telemetry()
        merged_pooled = pooled.merged_telemetry()
        assert merged_serial == merged_pooled
        assert merged_serial["counters"]  # non-trivial aggregation


class TestChaosDeterminism:
    def test_campaign_grid_identical_j1_vs_j4(self):
        serial = run_campaign(["flapping-node"], seeds=(0, 1), jobs=1)
        pooled = run_campaign(["flapping-node"], seeds=(0, 1), jobs=4)
        assert serial.ok and pooled.ok
        assert pooled.to_text() == serial.to_text()
        assert json.dumps(pooled.to_payload(), sort_keys=True) == json.dumps(
            serial.to_payload(), sort_keys=True
        )
        assert pooled.merged_invariant_counts() == serial.merged_invariant_counts()

    def test_malleable_scenarios_identical_j1_vs_j4(self):
        # The resize passes and placement policy run inside the worker;
        # the grid must stay byte-identical when those paths are hot.
        grid = ["malleable-shrink-storm", "topology-storm"]
        serial = run_campaign(grid, seeds=(0, 1), jobs=1)
        pooled = run_campaign(grid, seeds=(0, 1), jobs=4)
        assert serial.ok and pooled.ok
        assert pooled.to_text() == serial.to_text()
        assert json.dumps(pooled.to_payload(), sort_keys=True) == json.dumps(
            serial.to_payload(), sort_keys=True
        )
        resizes = sum(
            cell.report["jobs_grown"] + cell.report["jobs_shrunk"]
            for cell in pooled.cells
        )
        assert resizes > 0  # the sweep actually exercised the elastic path


class TestVerifyDeterminism:
    def test_single_seed_sweep_payload_equals_serial_run(self):
        serial = run_verify(seed=0, layers=("metamorphic",))
        sweep = run_verify_sweep([0], layers=("metamorphic",), jobs=1)
        assert sweep.reports[0].to_payload() == serial.to_payload()

    def test_seed_sweep_identical_j1_vs_j2(self):
        serial = run_verify_sweep([0, 1], layers=("metamorphic",), jobs=1)
        pooled = run_verify_sweep([0, 1], layers=("metamorphic",), jobs=2)
        assert serial.ok and pooled.ok
        assert json.dumps(pooled.to_payload(), sort_keys=True) == json.dumps(
            serial.to_payload(), sort_keys=True
        )

    def test_relation_filtered_sweep_identical_j1_vs_j4(self):
        # The acceptance sweep for the elastic/placement relations: the
        # filter must survive the worker round-trip and stay byte-stable.
        relations = ["malleable-throughput", "topology-fragmentation"]
        serial = run_verify_sweep([0, 1], relations=relations, jobs=1)
        pooled = run_verify_sweep([0, 1], relations=relations, jobs=4)
        assert serial.ok and pooled.ok
        assert json.dumps(pooled.to_payload(), sort_keys=True) == json.dumps(
            serial.to_payload(), sort_keys=True
        )
        for report in pooled.reports:
            assert sorted(r.relation for r in report.results) == sorted(relations)
