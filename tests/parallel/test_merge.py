"""Order-independent merging: the determinism-by-merge building blocks."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    Task,
    merge_counter_maps,
    merge_gauge_sections,
    merge_histogram_sections,
    merge_snapshots,
)
from repro.parallel.merge import ordered_values


class TestOrderedValues:
    def test_resequences_by_task_id(self):
        tasks = [Task(id="a", kind="selftest"), Task(id="b", kind="selftest")]
        assert ordered_values(tasks, {"b": 2, "a": 1}) == [1, 2]

    def test_missing_result_rejected(self):
        tasks = [Task(id="a", kind="selftest")]
        with pytest.raises(ConfigurationError, match="missing results"):
            ordered_values(tasks, {})


class TestCounters:
    def test_sums_name_by_name(self):
        merged = merge_counter_maps([{"a": 1.0, "b": 2.0}, {"b": 3.0, "c": 4.0}])
        assert merged == {"a": 1.0, "b": 5.0, "c": 4.0}

    def test_order_free(self):
        sections = [{"x": 1.0}, {"x": 2.0, "y": 7.0}, {"y": 1.0}]
        assert merge_counter_maps(sections) == merge_counter_maps(reversed(sections))

    def test_keys_sorted(self):
        assert list(merge_counter_maps([{"z": 1.0, "a": 1.0}])) == ["a", "z"]


class TestGauges:
    def test_last_write_follows_given_order(self):
        first = {"g": {"last": 1.0, "min": 1.0, "max": 1.0, "n": 2}}
        second = {"g": {"last": 9.0, "min": 0.5, "max": 9.0, "n": 3}}
        merged = merge_gauge_sections([first, second])
        assert merged["g"] == {"last": 9.0, "min": 0.5, "max": 9.0, "n": 5}

    def test_empty_gauges_skipped(self):
        empty = {"g": {"last": 0.0, "min": 0.0, "max": 0.0, "n": 0}}
        live = {"g": {"last": 4.0, "min": 2.0, "max": 4.0, "n": 1}}
        # a trailing n==0 snapshot must not clobber the last-write
        assert merge_gauge_sections([live, empty]) == {"g": live["g"]}
        assert merge_gauge_sections([empty]) == {}


class TestHistograms:
    def snap(self, count, total, lo, hi, buckets):
        return {
            "count": count, "sum": total, "min": lo, "max": hi,
            "mean": total / count if count else 0.0, "buckets": buckets,
        }

    def test_buckets_add_and_mean_recomputes(self):
        a = {"h": self.snap(2, 6.0, 1.0, 5.0, {"10": 2})}
        b = {"h": self.snap(1, 9.0, 9.0, 9.0, {"10": 1, "inf": 0})}
        merged = merge_histogram_sections([a, b])["h"]
        assert merged["count"] == 3 and merged["sum"] == 15.0
        assert merged["min"] == 1.0 and merged["max"] == 9.0
        assert merged["mean"] == pytest.approx(5.0)
        assert merged["buckets"] == {"10": 3, "inf": 0}

    def test_empty_snapshot_does_not_pollute_minmax(self):
        live = {"h": self.snap(2, 6.0, 1.0, 5.0, {"10": 2})}
        empty = {"h": self.snap(0, 0.0, 0.0, 0.0, {"10": 0})}
        merged = merge_histogram_sections([live, empty])["h"]
        assert merged["min"] == 1.0 and merged["max"] == 5.0 and merged["count"] == 2

    def test_empty_first_then_live(self):
        empty = {"h": self.snap(0, 0.0, 0.0, 0.0, {})}
        live = {"h": self.snap(1, 3.0, 3.0, 3.0, {"10": 1})}
        merged = merge_histogram_sections([empty, live])["h"]
        assert merged["min"] == 3.0 and merged["max"] == 3.0 and merged["count"] == 1


class TestSnapshots:
    def test_merges_all_three_sections(self):
        snapshots = [
            {
                "counters": {"c": 1.0},
                "gauges": {"g": {"last": 1.0, "min": 1.0, "max": 1.0, "n": 1}},
                "histograms": {},
            },
            {
                "counters": {"c": 2.0},
                "gauges": {"g": {"last": 5.0, "min": 5.0, "max": 5.0, "n": 1}},
                "histograms": {},
            },
        ]
        merged = merge_snapshots(snapshots)
        assert merged["counters"] == {"c": 3.0}
        assert merged["gauges"]["g"]["last"] == 5.0
        assert merged["gauges"]["g"]["n"] == 2
        assert merged["histograms"] == {}
