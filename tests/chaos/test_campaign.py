"""Campaign runner, determinism, shrinking, and the chaos CLI.

This file carries the PR's acceptance criteria: every catalogued
scenario runs violation-free, and the same seed reproduces the same
report byte for byte.
"""

import pytest

from repro.chaos import (
    SCENARIOS,
    ChaosScenario,
    Invariant,
    ScheduledFault,
    ddmin,
    get_scenario,
    run_scenario,
    shrink_schedule,
)
from repro.cli import main
from repro.errors import ConfigurationError


class TestScenarioCatalogue:
    def test_catalogue_contents(self):
        assert set(SCENARIOS) == {
            "failure-storm", "rolling-maintenance",
            "master-takeover-cascade", "flapping-node",
            "malleable-shrink-storm", "topology-storm",
        }

    def test_unknown_scenario_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="failure-storm"):
            get_scenario("nope")

    def test_unknown_scenario_is_not_a_keyerror(self):
        # The CLI turns ConfigurationError into a usage error; a raw
        # KeyError would surface as a traceback instead.
        with pytest.raises(ConfigurationError, match="no-such-thing"):
            get_scenario("no-such-thing")

    def test_schedules_are_seed_deterministic_and_sorted(self):
        import numpy as np

        scenario = get_scenario("failure-storm")
        a = scenario.build_schedule(np.random.default_rng(3))
        b = scenario.build_schedule(np.random.default_rng(3))
        assert a == b
        assert a == sorted(a, key=ScheduledFault.sort_key)
        assert a != scenario.build_schedule(np.random.default_rng(4))


class TestCampaignRuns:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_runs_clean(self, name):
        report = run_scenario(name, seed=7)
        assert report.ok, report.to_text()
        assert report.events_processed > 0
        assert report.checks_run == report.events_processed
        assert report.faults_injected > 0
        assert report.jobs_submitted > 0

    def test_failure_storm_exercises_the_monitor(self):
        report = run_scenario("failure-storm", seed=7)
        assert report.alerts_raised > 0
        assert len(report.schedule) == 43  # 40 point + 3 burst

    def test_master_takeover_cascade_reaches_takeover(self):
        report = run_scenario("master-takeover-cascade", seed=7)
        assert report.master_takeovers > 0

    def test_same_seed_same_report(self):
        a = run_scenario("failure-storm", seed=7)
        b = run_scenario("failure-storm", seed=7)
        assert a == b
        assert a.to_text() == b.to_text()

    def test_different_seed_different_run(self):
        a = run_scenario("flapping-node", seed=1)
        b = run_scenario("flapping-node", seed=2)
        assert a.schedule != b.schedule

    def test_report_repro_hint_names_the_cli(self):
        report = run_scenario("flapping-node", seed=3)
        assert report.repro_hint() == "repro chaos run flapping-node --seed 3"
        assert "violations: 0" in report.to_text()


class TestMalleableScenarios:
    def test_shrink_storm_resizes_and_stays_clean(self):
        report = run_scenario("malleable-shrink-storm", seed=0)
        assert report.ok, report.to_text()
        assert report.jobs_grown + report.jobs_shrunk > 0
        assert "resizes:" in report.to_text()

    def test_rigid_scenarios_report_zero_resizes(self):
        report = run_scenario("failure-storm", seed=0)
        assert report.jobs_grown == 0
        assert report.jobs_shrunk == 0

    def test_shrink_storm_deterministic(self):
        a = run_scenario("malleable-shrink-storm", seed=2)
        b = run_scenario("malleable-shrink-storm", seed=2)
        assert a == b
        assert a.to_text() == b.to_text()

    def test_topology_storm_deterministic_and_clean(self):
        a = run_scenario("topology-storm", seed=2)
        b = run_scenario("topology-storm", seed=2)
        assert a.ok, a.to_text()
        assert a == b


class TestDdmin:
    @staticmethod
    def fault(at, node):
        return ScheduledFault(at, "point", (node,), 120.0)

    def test_shrinks_to_the_single_culprit(self):
        items = [self.fault(100.0 * i, i) for i in range(12)]

        def fails(candidate):
            return any(5 in f.node_ids for f in candidate)

        minimal = ddmin(items, fails)
        assert minimal == [self.fault(500.0, 5)]

    def test_keeps_interacting_pairs(self):
        items = [self.fault(100.0 * i, i) for i in range(10)]

        def fails(candidate):
            nodes = {f.node_ids[0] for f in candidate}
            return {2, 7} <= nodes

        minimal = ddmin(items, fails)
        assert {f.node_ids[0] for f in minimal} == {2, 7}

    def test_non_failing_input_returns_empty(self):
        items = [self.fault(10.0, 1)]
        assert ddmin(items, lambda c: False) == []
        assert ddmin([], lambda c: True) == []


def tiny_scenario():
    return ChaosScenario(
        name="tiny",
        description="unit-test scenario",
        n_nodes=16,
        n_satellites=1,
        horizon_s=1800.0,
        n_jobs=4,
        builder=lambda scenario, rng: [],
    )


class NodeThreeTripwire(Invariant):
    """Fires iff compute node 3 ever actually fails — a planted 'bug'
    whose trigger the shrinker must isolate."""

    name = "node-three-tripwire"

    def attach(self, ctx, report):
        def listener(kind, node_ids, when):
            if kind != "recover" and 3 in node_ids:
                report(f"node 3 failed at {when:.0f}")

        ctx.cluster.failures.subscribe(listener)


class TestShrinkSchedule:
    def schedule(self):
        return [
            ScheduledFault(100.0 + 60.0 * i, "point", (node,), 120.0)
            for i, node in enumerate([1, 9, 3, 12, 6, 14])
        ]

    def test_shrinks_to_the_tripwire_fault(self):
        minimal = shrink_schedule(
            tiny_scenario(),
            seed=0,
            schedule=self.schedule(),
            invariant_factory=lambda: [NodeThreeTripwire()],
        )
        assert len(minimal) == 1
        assert minimal[0].node_ids == (3,)

    def test_clean_schedule_shrinks_to_nothing(self):
        minimal = shrink_schedule(
            tiny_scenario(),
            seed=0,
            schedule=[ScheduledFault(100.0, "point", (1,), 120.0)],
            invariant_factory=lambda: [NodeThreeTripwire()],
        )
        assert minimal == []

    def test_budget_exhaustion_returns_best_so_far(self):
        minimal = shrink_schedule(
            tiny_scenario(),
            seed=0,
            schedule=self.schedule(),
            invariant_factory=lambda: [NodeThreeTripwire()],
            max_runs=2,  # enough for the full run + one candidate
        )
        # Whatever was reached, it must still contain the culprit.
        assert any(3 in f.node_ids for f in minimal)


class TestChaosCli:
    def test_run_clean_scenario_exits_zero(self, capsys):
        assert main(["chaos", "run", "failure-storm", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "chaos campaign: failure-storm (seed=7)" in out
        assert "violations: 0" in out

    def test_list_enumerates_catalogue(self, capsys):
        assert main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "run", "no-such-scenario"])
        assert exc.value.code == 2
        assert "no-such-scenario" in capsys.readouterr().err

    def test_experiment_cli_still_works(self, capsys):
        assert main(["list"]) == 0
        assert "fig7" in capsys.readouterr().out
