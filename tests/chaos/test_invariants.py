"""Each invariant must actually fire on the breach it claims to catch.

A chaos harness whose invariants never trip is indistinguishable from
one that checks nothing, so every invariant here is driven into a
violating state by hand and asserted to report it — and asserted to
stay silent on the equivalent healthy state.
"""

import pytest

from repro.chaos import (
    ChaosContext,
    Eq1Correctness,
    FPTreeSoundness,
    Invariant,
    InvariantRegistry,
    NodeConservation,
    SatelliteLegality,
    SchedulerConservation,
    default_invariants,
)
from repro.chaos.invariants import MAX_RECORDED_PER_INVARIANT
from repro.cluster import ClusterSpec
from repro.cluster.failures import FailureModel
from repro.rm.eslurm import EslurmRM
from repro.rm.satellite import FAULT_TIMEOUT_S, SatelliteEvent, SatelliteState
from repro.sched.job import Job
from repro.simkit import Simulator


def make_ctx(n_nodes=32, n_satellites=2, seed=0):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(
        n_nodes=n_nodes,
        n_satellites=n_satellites,
        failure_model=FailureModel.disabled(),
    ).build(sim)
    rm = EslurmRM(sim, cluster)
    return ChaosContext(sim=sim, cluster=cluster, rm=rm)


def attach_one(ctx, invariant):
    """Attach a single invariant; return the registry recording for it."""
    registry = InvariantRegistry([invariant])
    registry.attach(ctx)
    return registry


class TestSatelliteLegality:
    def test_bt_start_on_busy_satellite_fires(self):
        ctx = make_ctx()
        registry = attach_one(ctx, SatelliteLegality())
        d = ctx.rm.sat_pool.daemons[0]
        d.heartbeat()  # UNKNOWN -> RUNNING
        d.handle(SatelliteEvent.BT_START)  # RUNNING -> BUSY: legal
        assert registry.total_violations == 0
        d.handle(SatelliteEvent.BT_START)  # BUSY given a second task: illegal
        assert registry.total_violations == 1
        assert "broadcast task assigned in state busy" in registry.violations[0].detail

    def test_legal_lifecycle_is_silent(self):
        ctx = make_ctx()
        registry = attach_one(ctx, SatelliteLegality())
        d = ctx.rm.sat_pool.daemons[0]
        d.heartbeat()
        d.handle(SatelliteEvent.BT_START)
        d.handle(SatelliteEvent.BT_SUCCESS)
        d.handle(SatelliteEvent.HB_FAILURE)
        d.heartbeat()  # responsive again -> RUNNING
        d.handle(SatelliteEvent.SHUTDOWN)
        assert registry.total_violations == 0

    def test_overdue_fault_escalation_flagged_by_scan(self):
        ctx = make_ctx()
        inv = SatelliteLegality()
        registry = attach_one(ctx, inv)
        d = ctx.rm.sat_pool.daemons[0]
        d.heartbeat()
        d.node.fail()
        d.handle(SatelliteEvent.HB_FAILURE)  # FAULT with fault_since = now
        # Advance the clock well past the timeout without any heartbeat
        # running (the thing a broken heartbeat loop would cause).
        overdue = FAULT_TIMEOUT_S + 2 * ctx.rm.profile.heartbeat_interval_s + 10.0
        ctx.sim.run(until=overdue)
        details = list(inv.check(ctx))
        assert len(details) == 1
        assert "without the" in details[0]
        assert registry.total_violations == 0  # scan result not auto-recorded

    def test_fresh_fault_not_flagged(self):
        ctx = make_ctx()
        inv = SatelliteLegality()
        attach_one(ctx, inv)
        d = ctx.rm.sat_pool.daemons[0]
        d.heartbeat()
        d.handle(SatelliteEvent.HB_FAILURE)
        assert list(inv.check(ctx)) == []


class TestNodeConservation:
    def test_healthy_pool_is_silent(self):
        ctx = make_ctx()
        assert list(NodeConservation().check(ctx)) == []

    def test_unresponsive_node_in_free_pool_fires(self):
        ctx = make_ctx()
        # Fail the node behind the scheduler's back: the cluster knows,
        # the pool does not — exactly the desync the invariant hunts.
        ctx.cluster.node(5).fail()
        details = list(NodeConservation().check(ctx))
        assert any("unresponsive node 5" in d for d in details)

    def test_free_while_allocated_fires(self):
        ctx = make_ctx()
        pool = ctx.rm.pool
        job = Job(job_id=9, name="c", user="u", n_nodes=2, runtime_s=10.0,
                  user_estimate_s=20.0, submit_time=0.0)
        nodes = pool.allocate(job, now=0.0)
        # Corrupt the bookkeeping on purpose: flip the state column back
        # to FREE while the owner column still binds the node to the job.
        pool._state[pool._col[nodes[0]]] = 0
        details = list(NodeConservation().check(ctx))
        assert any("free while allocated" in d for d in details)

    def test_double_allocation_fires(self):
        ctx = make_ctx()
        pool = ctx.rm.pool
        a = Job(job_id=1, name="a", user="u", n_nodes=2, runtime_s=10.0,
                user_estimate_s=20.0, submit_time=0.0)
        b = Job(job_id=2, name="b", user="u", n_nodes=2, runtime_s=10.0,
                user_estimate_s=20.0, submit_time=0.0)
        nodes_a = pool.allocate(a, now=0.0)
        pool.allocate(b, now=0.0)
        # Hand one of a's nodes to b as well.
        rec = pool.running[2]
        pool.running[2] = type(rec)(rec.job, (nodes_a[0],) + rec.node_ids[1:],
                                    rec.believed_end)
        details = list(NodeConservation().check(ctx))
        assert any(f"node {nodes_a[0]} allocated to jobs 1 and 2" in d for d in details)


class TestFPTreeSoundness:
    def trip(self, ctx, targets, ordered, leaf_idx=None, predicted=frozenset()):
        """Feed one synthetic construction record through the observer."""
        registry = attach_one(ctx, FPTreeSoundness())
        constructor = ctx.rm.fp_constructor
        if leaf_idx is None:
            from repro.fptree.tree import leaf_positions

            leaf_idx = [p - 1 for p in leaf_positions(len(targets) + 1,
                                                      constructor.width) if p > 0]
        assert len(constructor.construct_observers) == 1
        constructor.construct_observers[0](targets, ordered, leaf_idx, predicted)
        return registry

    def test_real_construction_is_silent(self):
        ctx = make_ctx()
        registry = attach_one(ctx, FPTreeSoundness())
        ctx.cluster.monitor.raise_alert(4)
        ctx.cluster.monitor.raise_alert(9)
        ctx.rm.fp_constructor.construct(root=100, targets=list(range(24)))
        assert registry.total_violations == 0

    def test_duplicated_node_fires(self):
        ctx = make_ctx()
        targets = list(range(8))
        bad = [0, 1, 2, 3, 4, 5, 6, 6]  # node 7 lost, node 6 doubled
        registry = self.trip(ctx, targets, bad)
        assert registry.total_violations == 1
        assert "not a permutation" in registry.violations[0].detail

    def test_wrong_leaf_layout_fires(self):
        ctx = make_ctx()
        targets = list(range(8))
        registry = self.trip(ctx, targets, list(targets), leaf_idx=[0, 1])
        assert any("leaf positions diverge" in v.detail for v in registry.violations)

    def test_predicted_node_off_leaf_fires(self):
        ctx = make_ctx()
        from repro.fptree.tree import leaf_positions

        width = ctx.rm.fp_constructor.width
        targets = list(range(3 * width))  # deep enough to have inner positions
        leaf_idx = [p - 1 for p in leaf_positions(len(targets) + 1, width) if p > 0]
        inner = next(pos for pos in range(len(targets)) if pos not in set(leaf_idx))
        # Identity order leaves the predicted node on an inner position —
        # the rearrangement the invariant audits would have moved it.
        registry = self.trip(ctx, targets, list(targets), predicted={targets[inner]})
        assert any("predicted-failed nodes on" in v.detail for v in registry.violations)


class TestEq1Correctness:
    def audit(self, s, n, w, m):
        reports = []
        Eq1Correctness._audit(reports.append, s, n, w, m)
        return reports

    @pytest.mark.parametrize(
        "s,w,m,expected",
        [(0, 8, 4, 0), (1, 8, 4, 1), (8, 8, 4, 1), (9, 8, 4, 2),
         (24, 8, 4, 3), (32, 8, 4, 4), (1000, 8, 4, 4)],
    )
    def test_correct_values_are_silent(self, s, w, m, expected):
        assert self.audit(s, expected, w, m) == []

    def test_wrong_value_fires(self):
        reports = self.audit(10, 5, 8, 3)
        assert len(reports) == 1
        assert "Eq. 1 says 2" in reports[0]

    def test_attached_observer_audits_compute_n(self):
        ctx = make_ctx()
        registry = attach_one(ctx, Eq1Correctness())
        for s in (0, 1, 7, 9, 100, 10_000):
            ctx.rm.sat_pool.compute_n(s)
        assert registry.total_violations == 0
        # A fabricated wrong evaluation through the same observer fires.
        observer = ctx.rm.sat_pool.eq1_observers[0]
        observer(10, 5, 8, 3)
        assert registry.total_violations == 1


class TestSchedulerConservation:
    def test_healthy_state_is_silent(self):
        ctx = make_ctx()
        assert list(SchedulerConservation().check(ctx)) == []

    def test_job_queued_and_running_fires(self):
        ctx = make_ctx()
        job = Job(job_id=7, name="j", user="u", n_nodes=2, runtime_s=10.0,
                  user_estimate_s=20.0, submit_time=0.0)
        ctx.rm.queue.submit(job)
        ctx.rm.pool.allocate(job, now=0.0)
        details = list(SchedulerConservation().check(ctx))
        assert any("both queued and running" in d for d in details)

    def test_head_starvation_fires_once(self):
        ctx = make_ctx()
        inv = SchedulerConservation()
        job = Job(job_id=1, name="j", user="u", n_nodes=2, runtime_s=10.0,
                  user_estimate_s=20.0, submit_time=0.0)
        ctx.rm.queue.submit(job)  # fits (32 nodes free) but never started
        assert list(inv.check(ctx)) == []  # first sighting arms the timer
        limit = 2 * ctx.rm.profile.scheduler_tick_s + inv.STARVATION_SLACK_S
        ctx.sim.run(until=limit + 5.0)
        details = list(inv.check(ctx))
        assert any("has waited" in d for d in details)
        assert list(inv.check(ctx)) == []  # flagged heads are not re-reported


class TestRegistry:
    def test_default_invariants_are_fresh_instances(self):
        a, b = default_invariants(), default_invariants()
        assert {i.name for i in a} == {
            "satellite-legality", "node-conservation", "fptree-soundness",
            "eq1-correctness", "scheduler-conservation", "malleable-width",
        }
        assert all(x is not y for x, y in zip(a, b))

    def test_probe_records_scan_violations_with_timestamps(self):
        ctx = make_ctx()
        registry = InvariantRegistry(default_invariants())
        registry.attach(ctx)
        ctx.cluster.node(2).fail()  # desync: pool still believes it free
        ctx.sim.call_at(50.0, lambda: None)
        ctx.sim.run(until=50.0)
        registry.probe(ctx)
        # One desynced node trips two conservation clauses: free-but-not-
        # allocatable and unresponsive-but-free.
        assert registry.total_violations == 2
        assert all(v.invariant == "node-conservation" for v in registry.violations)
        assert all(v.time == 50.0 for v in registry.violations)

    def test_recorded_violations_are_capped_but_counts_are_not(self):
        class AlwaysFires(Invariant):
            name = "always-fires"

            def check(self, ctx):
                yield "boom"

        ctx = make_ctx()
        registry = InvariantRegistry([AlwaysFires()])
        registry.attach(ctx)
        for _ in range(MAX_RECORDED_PER_INVARIANT + 25):
            registry.probe(ctx)
        assert registry.total_violations == MAX_RECORDED_PER_INVARIANT + 25
        assert len(registry.violations) == MAX_RECORDED_PER_INVARIANT

    def test_counts_keep_registration_order(self):
        registry = InvariantRegistry(default_invariants())
        assert [name for name, _ in registry.counts()] == [
            "satellite-legality", "node-conservation", "fptree-soundness",
            "eq1-correctness", "scheduler-conservation", "malleable-width",
        ]
