"""Tests for generator-based processes."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.simkit import Simulator


def test_process_return_value_is_event_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc())
    sim.run()
    assert p.value == 42


def test_process_can_wait_on_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return (sim.now, result)

    p = sim.process(parent())
    sim.run()
    assert p.value == (2.0, "child-result")


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent():
        try:
            yield sim.process(bad())
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.process(parent())
    sim.run()
    assert p.value == "caught inner"


def test_uncaught_process_exception_raises_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
            return "slept"
        except ProcessInterrupt as intr:
            return ("interrupted", sim.now, intr.cause)

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        p.interrupt(cause="wake up")

    sim.process(interrupter())
    sim.run()
    assert p.value == ("interrupted", 3.0, "wake up")


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_raises_inside_process():
    sim = Simulator()

    def bad():
        yield "not an event"  # type: ignore[misc]

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()

    def proc():
        done = sim.timeout(0.0)
        yield sim.timeout(1.0)  # let `done` fire and be processed
        yield done  # already processed: should not deadlock
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 1.0


def test_non_generator_body_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_is_alive_lifecycle():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    p = sim.process(proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_process_name_defaults_to_generator_name():
    sim = Simulator()

    def myproc():
        yield sim.timeout(1.0)

    p = sim.process(myproc())
    assert "process" in repr(p) or "myproc" in repr(p)
    sim.run()


def test_interrupt_after_same_tick_finish_noops():
    """A deferred interrupt landing after the process already completed
    in the same tick must silently no-op (the ``triggered`` guard) —
    the semantics the FSM lifecycle's synchronous no-op kill mirrors.
    """
    sim = Simulator()

    def worker():
        try:
            yield sim.timeout(10.0)
            return "slept"
        except ProcessInterrupt:
            return "interrupted"

    p = sim.process(worker())

    def saboteur():
        # Both interrupts are scheduled while the worker is alive; the
        # first delivery resumes it to its end, so the second arrives
        # to find it finished and must no-op rather than error.
        yield sim.timeout(1.0)
        p.interrupt(cause="first")
        p.interrupt(cause="second")

    sim.process(saboteur())
    sim.run()
    assert p.value == "interrupted"  # the first delivery, and only it


def test_thousands_of_waiters_detach_in_constant_time():
    """Satellite-scale wait sets: interrupting waiters parked on one
    event must blank dead slots, not ``list.remove`` — a linear scan per
    interrupt is O(n^2) across the set and once froze machine-size runs.
    """
    sim = Simulator()
    n = 4000
    gate = sim.event()
    resumed = []
    interrupted = []

    def waiter(i):
        try:
            yield gate
            resumed.append(i)
        except ProcessInterrupt:
            interrupted.append(i)
            yield sim.timeout(0.0)

    procs = [sim.process(waiter(i)) for i in range(n)]

    def reaper():
        yield sim.timeout(1.0)
        # Interrupt every odd waiter; each detach must blank its slot.
        for i in range(1, n, 2):
            procs[i].interrupt(cause="evicted")
        yield sim.timeout(1.0)
        gate.succeed("open")

    sim.process(reaper())
    import time

    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert sorted(interrupted) == list(range(1, n, 2))
    assert sorted(resumed) == list(range(0, n, 2))
    # Dead slots stay behind as None entries; survivors kept their order.
    assert gate.callbacks is None  # processed
    # Loose wall bound: the O(n^2) remove path took seconds at this size.
    assert elapsed < 2.0, f"detach storm took {elapsed:.2f}s"


def test_dead_slots_are_skipped_not_compacted():
    """The callbacks list keeps its length (slots are blanked in place),
    so surviving waiters' slot indices stay valid."""
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter(tag):
        try:
            yield gate
            log.append(tag)
        except ProcessInterrupt:
            log.append(f"{tag}-int")
            return

    a = sim.process(waiter("a"))
    b = sim.process(waiter("b"))
    c = sim.process(waiter("c"))

    def driver():
        yield sim.timeout(1.0)
        n_slots = len(gate.callbacks)
        b.interrupt()
        # Delivery is deferred (URGENT, same tick) — by this process's
        # next resume the detach has happened: b's slot is blanked in
        # place, the list does not shrink, survivors keep their slots.
        yield sim.timeout(0.0)
        assert len(gate.callbacks) == n_slots
        assert gate.callbacks.count(None) == 1
        yield sim.timeout(1.0)
        gate.succeed()

    sim.process(driver())
    sim.run()
    assert log == ["b-int", "a", "c"]
    assert a.triggered and c.triggered
