"""Tests for generator-based processes."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.simkit import Simulator


def test_process_return_value_is_event_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc())
    sim.run()
    assert p.value == 42


def test_process_can_wait_on_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return (sim.now, result)

    p = sim.process(parent())
    sim.run()
    assert p.value == (2.0, "child-result")


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent():
        try:
            yield sim.process(bad())
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.process(parent())
    sim.run()
    assert p.value == "caught inner"


def test_uncaught_process_exception_raises_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
            return "slept"
        except ProcessInterrupt as intr:
            return ("interrupted", sim.now, intr.cause)

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        p.interrupt(cause="wake up")

    sim.process(interrupter())
    sim.run()
    assert p.value == ("interrupted", 3.0, "wake up")


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_raises_inside_process():
    sim = Simulator()

    def bad():
        yield "not an event"  # type: ignore[misc]

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()

    def proc():
        done = sim.timeout(0.0)
        yield sim.timeout(1.0)  # let `done` fire and be processed
        yield done  # already processed: should not deadlock
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 1.0


def test_non_generator_body_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_is_alive_lifecycle():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    p = sim.process(proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_process_name_defaults_to_generator_name():
    sim = Simulator()

    def myproc():
        yield sim.timeout(1.0)

    p = sim.process(myproc())
    assert "process" in repr(p) or "myproc" in repr(p)
    sim.run()
