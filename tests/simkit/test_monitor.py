"""Tests for TimeSeries, Counter, and Tally measurement utilities."""

import numpy as np
import pytest

from repro.simkit import Counter, Tally, TimeSeries


class TestTimeSeries:
    def test_record_and_len(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_backwards_time_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_equal_time_allowed(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        ts.record(5.0, 2.0)
        assert len(ts) == 2

    def test_last_and_mean(self):
        ts = TimeSeries()
        assert ts.last() == 0.0
        assert ts.mean() == 0.0
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)
        assert ts.last() == 20.0
        assert ts.mean() == 15.0
        assert ts.max() == 20.0

    def test_time_average_step_function(self):
        ts = TimeSeries()
        ts.record(0.0, 0.0)
        ts.record(10.0, 100.0)
        # value 0 held for [0,10), value 100 held for zero width
        assert ts.time_average() == 0.0
        # holding 100 until t=20 gives (0*10 + 100*10)/20
        assert ts.time_average(until=20.0) == 50.0

    def test_time_average_until_before_last_raises(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(10.0, 2.0)
        with pytest.raises(ValueError):
            ts.time_average(until=5.0)

    def test_resample_step_hold(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(2.0, 5.0)
        grid, vals = ts.resample(1.0, until=3.0)
        np.testing.assert_allclose(grid, [0.0, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(vals, [1.0, 1.0, 5.0, 5.0])

    def test_resample_empty(self):
        grid, vals = TimeSeries().resample(1.0)
        assert grid.size == 0 and vals.size == 0

    def test_resample_bad_step(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.resample(0.0)


class TestCounter:
    def test_add(self):
        c = Counter("jobs")
        c.add()
        c.add(4)
        assert int(c) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add(-1)


class TestTally:
    def test_empty_tally(self):
        t = Tally()
        assert t.mean == 0.0
        assert t.std == 0.0
        assert t.min == 0.0
        assert t.max == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10, 3, size=500)
        t = Tally()
        t.extend(data)
        assert t.n == 500
        np.testing.assert_allclose(t.mean, data.mean(), rtol=1e-12)
        np.testing.assert_allclose(t.std, data.std(ddof=1), rtol=1e-10)
        assert t.min == data.min()
        assert t.max == data.max()

    def test_single_sample_variance_zero(self):
        t = Tally()
        t.record(7.0)
        assert t.variance == 0.0
