"""Tests for Store and Resource queueing primitives."""

import pytest

from repro.errors import SimulationError
from repro.simkit import Resource, Simulator, Store


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def proc():
        yield store.put("x")
        item = yield store.get()
        return item

    p = sim.process(proc())
    sim.run()
    assert p.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (sim.now, item)

    def producer():
        yield sim.timeout(5.0)
        yield store.put("late")

    p = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert p.value == (5.0, "late")


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.put(i)
    got = []

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("a")

    def producer():
        yield store.put("b")
        return sim.now

    def consumer():
        yield sim.timeout(4.0)
        yield store.get()

    p = sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert p.value == 4.0
    assert list(store.items) == ["b"]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(9)
    assert store.try_get() == 9
    assert store.try_get() is None


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_resource_acquire_release():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    times = []

    def worker(hold):
        yield res.acquire()
        yield sim.timeout(hold)
        res.release()
        times.append(sim.now)

    for _ in range(4):
        sim.process(worker(10.0))
    sim.run()
    # capacity 2: two finish at t=10, the next two queue and finish at t=20
    assert times == [10.0, 10.0, 20.0, 20.0]


def test_resource_available_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    assert res.available == 3

    def worker():
        yield res.acquire()

    sim.process(worker())
    sim.run()
    assert res.available == 2


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)
