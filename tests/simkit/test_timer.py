"""The timer lane: re-armable plain-callback timers.

One :class:`Timer` object carries a whole periodic (or phased) activity
without per-firing event allocations — the contract the flat FSM job
lifecycle is built on.  The re-arming rule interacts with lazy heap
deletion, so the cancel/re-arm edges are pinned here.
"""

import pytest

from repro.errors import SimulationError
from repro.simkit import Simulator
from repro.simkit.events import Timer


def test_timer_fires_fn_at_delay():
    sim = Simulator()
    fired = []
    timer = sim.timer(lambda: fired.append(sim.now), label="t")
    timer.arm(5.0)
    sim.run()
    assert fired == [5.0]
    assert not timer.pending


def test_rearm_from_inside_firing_makes_a_periodic_loop():
    sim = Simulator()
    fired = []

    def fire():
        fired.append(sim.now)
        if sim.now < 30.0:
            timer.arm(10.0)

    timer = sim.timer(fire)
    timer.arm(10.0)
    sim.run()
    assert fired == [10.0, 20.0, 30.0]


def test_one_timer_object_is_reused_across_firings():
    sim = Simulator()
    seen = set()

    def fire():
        seen.add(id(timer))
        if sim.now < 5.0:
            timer.arm(1.0)

    timer = sim.timer(fire)
    timer.arm(1.0)
    sim.run()
    assert len(seen) == 1


def test_rearm_while_pending_is_rejected():
    sim = Simulator()
    timer = sim.timer(lambda: None, label="busy")
    timer.arm(1.0)
    with pytest.raises(SimulationError, match="re-armed"):
        timer.arm(2.0)


def test_rearm_after_cancel_is_rejected():
    # The cancelled firing still sits in the heap (lazy deletion); a
    # re-arm would race it.  The object must be abandoned instead.
    sim = Simulator()
    timer = sim.timer(lambda: None, label="dead")
    timer.arm(1.0)
    timer.cancel()
    with pytest.raises(SimulationError, match="re-armed"):
        timer.arm(2.0)


def test_cancelled_timer_never_runs():
    sim = Simulator()
    fired = []
    timer = sim.timer(lambda: fired.append(sim.now))
    timer.arm(1.0)
    timer.cancel()
    sim.run()
    assert fired == []


def test_cancel_idle_timer_is_rejected():
    sim = Simulator()
    timer = sim.timer(lambda: None, label="idle")
    with pytest.raises(SimulationError, match="idle"):
        timer.cancel()


def test_negative_delay_is_rejected():
    sim = Simulator()
    timer = sim.timer(lambda: None)
    with pytest.raises(SimulationError, match="negative"):
        timer.arm(-1.0)


def test_timer_interleaves_deterministically_with_timeouts():
    sim = Simulator()
    order = []

    def waiter():
        yield sim.timeout(1.0)
        order.append("process")

    sim.process(waiter())
    timer = sim.timer(lambda: order.append("timer"))
    timer.arm(1.0)
    sim.run()
    # Same time, same NORMAL priority: heap insertion (seq) order
    # decides.  The timer armed immediately; the process's Timeout is
    # only created when its body first runs (bootstrap, inside run()).
    assert order == ["timer", "process"]


def test_describe_carries_label_for_snapshots():
    sim = Simulator()
    timer = sim.timer(lambda: None, label="job42")
    timer.arm(1.0)
    state = timer.describe()
    assert state["label"] == "job42"
    assert state["type"] == "Timer"


def test_timer_factory_returns_timer_lane_object():
    sim = Simulator()
    assert isinstance(sim.timer(lambda: None), Timer)
