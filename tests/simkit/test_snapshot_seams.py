"""Tests for the simulator's snapshot seams (repro.snapshot's kernel API).

Covers the three seams cold restore is built on — ``run_until_count``,
``restore_clock``, ``snapshot_state`` — plus a regression for the
hostile-state family "failure announced but not yet effective": a fault
scheduled for later in the day is known to the monitor at the cut, but
has not landed yet, and resume must still be byte-identical.
"""

import pytest

from repro.api import SimulationConfig
from repro.errors import SimulationError
from repro.simkit.core import Simulator
from tests.snapshot.helpers import cold_split_run, straight_run, warm_split_run


class TestRunUntilCount:
    def test_backwards_count_raises(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1
        with pytest.raises(SimulationError, match="in the past"):
            sim.run_until_count(0)

    def test_stops_on_heap_drain(self):
        sim = Simulator()
        for when in (1.0, 2.0, 3.0):
            sim.call_at(when, lambda: None)
        assert sim.run_until_count(10) == 3
        assert sim.events_processed == 3

    def test_deadline_is_event_boundary_not_clock_target(self):
        sim = Simulator()
        for when in (1.0, 2.0, 3.0):
            sim.call_at(when, lambda: None)
        assert sim.run_until_count(3, deadline=2.5) == 2
        assert sim.events_processed == 2
        # Unlike run(until=2.5), the clock stays on the last processed
        # event — restore_clock reproduces the final value separately.
        assert sim.now == 2.0

    def test_exact_count_pauses_mid_heap(self):
        sim = Simulator()
        for when in (1.0, 2.0, 3.0):
            sim.call_at(when, lambda: None)
        assert sim.run_until_count(2) == 2
        assert sim.now == 2.0
        assert sim.peek() == 3.0  # the rest is still live


class TestRestoreClock:
    def test_advances_without_processing(self):
        sim = Simulator()
        sim.call_at(9.0, lambda: None)
        sim.restore_clock(5.0)
        assert sim.now == 5.0
        assert sim.events_processed == 0

    def test_backwards_raises(self):
        sim = Simulator()
        sim.restore_clock(5.0)
        with pytest.raises(SimulationError, match="backwards"):
            sim.restore_clock(4.0)


class TestSnapshotState:
    def test_heap_is_reported_sorted(self):
        sim = Simulator()
        sim.call_at(3.0, lambda: None)
        sim.call_at(1.0, lambda: None)
        state = sim.snapshot_state()
        assert [entry[0] for entry in state["heap"]] == [1.0, 3.0]

    def test_cancelled_entries_never_leak(self):
        # Cancelled events are lazily deleted, so their physical heap
        # position is timing-dependent; the captured state must be
        # identical whether or not peek() happened to prune them.
        sim = Simulator()
        doomed = sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        doomed.cancel()
        state = sim.snapshot_state()
        assert [entry[0] for entry in state["heap"]] == [2.0]
        sim.peek()  # physically prunes the cancelled root
        assert sim.snapshot_state() == state


class TestAnnouncedFailureEquivalence:
    """Hostile state: a fault is announced to the monitor at t=0 but only
    lands at noon — cut the run in between and resume must match."""

    CONFIG = SimulationConfig(
        rm="eslurm", n_nodes=32, n_satellites=2, seed=3, n_jobs=20,
        horizon_s=86_400.0,
    )
    FAULT_AT = 12 * 3600.0

    @classmethod
    def announced_fault(cls, world):
        # schedule_fault informs the monitor immediately; the nodes only
        # go down at FAULT_AT.
        world.cluster.failures.schedule_fault(
            "point", cls.FAULT_AT, (1, 2), 1800.0
        )

    def test_resume_between_announce_and_apply_is_byte_identical(self):
        straight, _ = straight_run(self.CONFIG, setup=self.announced_fault)
        snapshot, warm = warm_split_run(self.CONFIG, 2000, setup=self.announced_fault)
        assert snapshot.sim_now < self.FAULT_AT  # cut precedes the fault landing
        assert warm == straight
        assert cold_split_run(snapshot, setup=self.announced_fault) == straight
