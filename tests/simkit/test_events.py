"""Tests for primitive events and combinators."""

import pytest

from repro.errors import SimulationError
from repro.simkit import AllOf, AnyOf, Simulator


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_event_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(123)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 123


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_allof_waits_for_all():
    sim = Simulator()
    t1, t2 = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
    cond = AllOf(sim, [t1, t2])

    def proc():
        result = yield cond
        return (sim.now, sorted(result.values()))

    p = sim.process(proc())
    sim.run()
    assert p.value == (3.0, ["a", "b"])


def test_anyof_fires_on_first():
    sim = Simulator()
    t1, t2 = sim.timeout(1.0, "fast"), sim.timeout(3.0, "slow")
    cond = AnyOf(sim, [t1, t2])

    def proc():
        result = yield cond
        return (sim.now, list(result.values()))

    p = sim.process(proc())
    sim.run()
    assert p.value == (1.0, ["fast"])


def test_empty_allof_fires_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered
    assert cond.value == {}


def test_allof_propagates_failure():
    sim = Simulator()
    ok = sim.timeout(1.0)
    bad = sim.event()
    bad.fail(ValueError("child failed"))
    cond = AllOf(sim, [ok, bad])

    def proc():
        with pytest.raises(ValueError, match="child failed"):
            yield cond
        return "handled"

    p = sim.process(proc())
    sim.run()
    assert p.value == "handled"


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AllOf(sim1, [sim2.timeout(1.0)])


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(2.0, value="payload")
        return got

    p = sim.process(proc())
    sim.run()
    assert p.value == "payload"


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        sim = Simulator()
        fired = []
        ev = sim.timeout(5.0, value="x")
        ev.callbacks.append(lambda e: fired.append(e.value))
        ev.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0
        assert sim.now == 0.0  # cancelled entries do not advance the clock

    def test_cancel_processed_event_rejected(self):
        sim = Simulator()
        ev = sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            ev.cancel()

    def test_trigger_after_cancel_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.cancel()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("boom"))

    def test_cancelled_events_skipped_in_order(self):
        sim = Simulator()
        order = []

        def note(tag):
            return lambda e: order.append(tag)

        a = sim.timeout(1.0)
        b = sim.timeout(2.0)
        c = sim.timeout(3.0)
        a.callbacks.append(note("a"))
        b.callbacks.append(note("b"))
        c.callbacks.append(note("c"))
        b.cancel()
        sim.run()
        assert order == ["a", "c"]
        assert sim.events_processed == 2

    def test_peek_prunes_cancelled_top(self):
        sim = Simulator()
        early = sim.timeout(1.0)
        sim.timeout(5.0)
        early.cancel()
        assert sim.peek() == 5.0

    def test_peek_all_cancelled_is_infinite(self):
        sim = Simulator()
        ev = sim.timeout(1.0)
        ev.cancel()
        assert sim.peek() == float("inf")

    def test_step_skips_cancelled_entries(self):
        sim = Simulator()
        dead = sim.timeout(1.0)
        live = sim.timeout(2.0, value="ok")
        got = []
        live.callbacks.append(lambda e: got.append(e.value))
        dead.cancel()
        sim.step()
        assert got == ["ok"]
        assert sim.now == 2.0

    def test_step_on_only_cancelled_raises(self):
        sim = Simulator()
        sim.timeout(1.0).cancel()
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_until_deadline_ignores_cancelled(self):
        sim = Simulator()
        late = sim.timeout(10.0)
        doomed = sim.timeout(3.0)
        doomed.cancel()
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert not late.processed
        assert sim.events_processed == 0

    def test_cancelled_never_reaches_trace_hooks(self):
        sim = Simulator()
        seen = []
        sim.add_trace_hook(lambda when, prio, seq: seen.append(when))
        keep = sim.timeout(1.0)
        drop = sim.timeout(2.0)
        sim.timeout(3.0)
        drop.cancel()
        sim.run()
        assert seen == [1.0, 3.0]
        assert keep.processed
