"""Tests for primitive events and combinators."""

import pytest

from repro.errors import SimulationError
from repro.simkit import AllOf, AnyOf, Simulator


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_event_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(123)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 123


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_allof_waits_for_all():
    sim = Simulator()
    t1, t2 = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
    cond = AllOf(sim, [t1, t2])

    def proc():
        result = yield cond
        return (sim.now, sorted(result.values()))

    p = sim.process(proc())
    sim.run()
    assert p.value == (3.0, ["a", "b"])


def test_anyof_fires_on_first():
    sim = Simulator()
    t1, t2 = sim.timeout(1.0, "fast"), sim.timeout(3.0, "slow")
    cond = AnyOf(sim, [t1, t2])

    def proc():
        result = yield cond
        return (sim.now, list(result.values()))

    p = sim.process(proc())
    sim.run()
    assert p.value == (1.0, ["fast"])


def test_empty_allof_fires_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered
    assert cond.value == {}


def test_allof_propagates_failure():
    sim = Simulator()
    ok = sim.timeout(1.0)
    bad = sim.event()
    bad.fail(ValueError("child failed"))
    cond = AllOf(sim, [ok, bad])

    def proc():
        with pytest.raises(ValueError, match="child failed"):
            yield cond
        return "handled"

    p = sim.process(proc())
    sim.run()
    assert p.value == "handled"


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AllOf(sim1, [sim2.timeout(1.0)])


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(2.0, value="payload")
        return got

    p = sim.process(proc())
    sim.run()
    assert p.value == "payload"
