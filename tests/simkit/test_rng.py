"""Tests for RNG stream state round-trips and restore isolation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simkit.rng import RngRegistry


class TestGetSetState:
    def test_exact_round_trip_mid_stream(self):
        reg = RngRegistry(seed=5)
        reg.stream("a").random(7)  # advance off the derivation point
        reg.stream("b").integers(10, size=3)
        state = reg.getstate()
        expected_a = reg.stream("a").random(5)
        expected_b = reg.stream("b").random(5)
        reg.setstate(state)
        assert np.array_equal(reg.stream("a").random(5), expected_a)
        assert np.array_equal(reg.stream("b").random(5), expected_b)

    def test_setstate_materialises_missing_streams(self):
        source = RngRegistry(seed=5)
        source.stream("fabric").random(11)
        fresh = RngRegistry(seed=5)
        fresh.setstate(source.getstate())  # "fabric" never touched here
        assert np.array_equal(
            fresh.stream("fabric").random(4), source.stream("fabric").random(4)
        )

    def test_getstate_is_a_frozen_copy(self):
        # The snapshot must not move when the live registry keeps drawing
        # (numpy's state dict aliases mutable internals).
        reg = RngRegistry(seed=1)
        reg.stream("x").random(3)
        state = reg.getstate()
        frozen = repr(state)
        reg.stream("x").random(1000)
        assert repr(state) == frozen

    def test_setstate_does_not_alias_the_input(self):
        # Mutating the state dict after restore must not move the stream.
        reg = RngRegistry(seed=2)
        reg.stream("x").random(3)
        state = reg.getstate()
        reg.setstate(state)
        expected = reg.stream("x").random(4)
        reg.setstate(state)
        state["x"]["state"]["state"] = 0  # corrupt the caller's copy
        assert np.array_equal(reg.stream("x").random(4), expected)

    def test_two_restores_cannot_influence_each_other(self):
        # The satellite contract: two registries restored from ONE
        # captured state are fully independent — draining one leaves the
        # other byte-identical to a third, untouched restore.
        source = RngRegistry(seed=9)
        source.stream("sched").random(13)
        state = source.getstate()
        first, second, control = (RngRegistry(seed=9) for _ in range(3))
        first.setstate(state)
        second.setstate(state)
        control.setstate(state)
        first.stream("sched").random(10_000)  # drain one restore
        assert np.array_equal(
            second.stream("sched").random(6), control.stream("sched").random(6)
        )


class TestAdopt:
    def test_adopt_registers_without_drawing(self):
        reg = RngRegistry(seed=4)
        gen = np.random.default_rng(4)
        expected = np.random.default_rng(4).random(5)
        assert reg.adopt("est", gen) is gen
        assert "est" in reg
        assert np.array_equal(gen.random(5), expected)  # no draw consumed

    def test_adopt_same_object_idempotent_different_object_rejected(self):
        reg = RngRegistry(seed=4)
        gen = np.random.default_rng(4)
        reg.adopt("est", gen)
        reg.adopt("est", gen)  # same object: fine
        with pytest.raises(SimulationError, match="already registered"):
            reg.adopt("est", np.random.default_rng(4))

    def test_adopted_stream_round_trips(self):
        reg = RngRegistry(seed=4)
        gen = reg.adopt("est", np.random.default_rng(4))
        gen.random(9)
        state = reg.getstate()
        expected = gen.random(5)
        other = RngRegistry(seed=4)
        other.adopt("est", np.random.default_rng(4))
        other.setstate(state)
        assert np.array_equal(other.stream("est").random(5), expected)

    def test_bit_generator_mismatch_rejected(self):
        reg = RngRegistry(seed=4)
        reg.adopt("est", np.random.Generator(np.random.MT19937(4)))
        reg.stream("est").random(3)
        state = reg.getstate()
        fresh = RngRegistry(seed=4)  # "est" would derive as PCG64 here
        with pytest.raises(SimulationError, match="re-adopt"):
            fresh.setstate(state)
