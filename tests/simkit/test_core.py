"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SimulationError
from repro.simkit import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 5.0
    assert sim.now == 5.0


def test_run_until_number_advances_clock_exactly():
    sim = Simulator()
    sim.process(iter_timeouts(sim, [1.0, 1.0, 1.0]))
    sim.run(until=2.5)
    assert sim.now == 2.5


def iter_timeouts(sim, delays):
    for d in delays:
        yield sim.timeout(d)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(3.0)
        return "done"

    p = sim.process(proc())
    assert sim.run(until=p) == "done"


def test_run_until_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_run_until_event_never_fires_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_fifo_order_at_same_time():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        sim.process(proc(tag))
    sim.run()
    assert order == list(range(10))


def test_step_on_empty_heap_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_empty_heap_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_call_at_runs_function_at_time():
    sim = Simulator()
    seen = []
    sim.call_at(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]


def test_call_at_past_raises():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_events_processed_counter_increases():
    sim = Simulator()
    sim.process(iter_timeouts(sim, [1.0, 1.0]))
    sim.run()
    assert sim.events_processed >= 2


def test_determinism_same_seed_same_draws():
    a = Simulator(seed=42).rng.stream("x").random(5)
    b = Simulator(seed=42).rng.stream("x").random(5)
    assert (a == b).all()


def test_unhandled_failed_event_raises_at_step():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()
