"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SimulationError
from repro.simkit import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 5.0
    assert sim.now == 5.0


def test_run_until_number_advances_clock_exactly():
    sim = Simulator()
    sim.process(iter_timeouts(sim, [1.0, 1.0, 1.0]))
    sim.run(until=2.5)
    assert sim.now == 2.5


def iter_timeouts(sim, delays):
    for d in delays:
        yield sim.timeout(d)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(3.0)
        return "done"

    p = sim.process(proc())
    assert sim.run(until=p) == "done"


def test_run_until_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_run_until_event_never_fires_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_fifo_order_at_same_time():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        sim.process(proc(tag))
    sim.run()
    assert order == list(range(10))


def test_step_on_empty_heap_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_empty_heap_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_call_at_runs_function_at_time():
    sim = Simulator()
    seen = []
    sim.call_at(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]


def test_call_at_past_raises():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_events_processed_counter_increases():
    sim = Simulator()
    sim.process(iter_timeouts(sim, [1.0, 1.0]))
    sim.run()
    assert sim.events_processed >= 2


def test_determinism_same_seed_same_draws():
    a = Simulator(seed=42).rng.stream("x").random(5)
    b = Simulator(seed=42).rng.stream("x").random(5)
    assert (a == b).all()


def test_unhandled_failed_event_raises_at_step():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


class TestRunUntilInfinity:
    """Regression: ``run(until=float("inf"))`` must not teleport the clock.

    ``float(x)`` returns ``x`` itself for an exact float, so a
    caller-supplied ``float("inf")`` is a *different object* from the
    module-level infinity sentinel; the old identity comparison treated
    it as a finite deadline and set the clock to infinity after the
    heap drained.
    """

    def test_caller_supplied_inf_leaves_clock_at_last_event(self):
        sim = Simulator()
        sim.process(iter_timeouts(sim, [5.0]))
        sim.run(until=float("inf"))
        assert sim.now == 5.0

    def test_caller_supplied_inf_on_empty_heap_keeps_clock(self):
        sim = Simulator(start_time=3.0)
        sim.run(until=float("inf"))
        assert sim.now == 3.0

    def test_finite_deadline_still_advances_clock_exactly(self):
        sim = Simulator()
        sim.run(until=7.5)
        assert sim.now == 7.5


class TestFailedEventAccounting:
    """A failed, undefused event *was* processed: the counter, the golden
    trace, and the probes must all record it before the failure raises."""

    def _instrumented(self):
        sim = Simulator()
        trace, probed = [], []
        sim.add_trace_hook(lambda when, prio, seq: trace.append((when, prio, seq)))
        sim.add_probe(lambda: probed.append(sim.events_processed))
        return sim, trace, probed

    def test_run_counts_and_traces_the_failing_event(self):
        sim, trace, probed = self._instrumented()
        sim.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert sim.events_processed == 1
        assert len(trace) == 1
        assert probed == [1]  # the probe saw the already-updated count

    def test_step_counts_and_traces_the_failing_event(self):
        sim, trace, probed = self._instrumented()
        sim.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.step()
        assert sim.events_processed == 1
        assert len(trace) == 1
        assert probed == [1]


class TestCohortDispatch:
    """Same-timestamp cohort dispatch must be invisible next to serial
    ``step()`` — these pin the three hazards ``_run_cohorts`` guards."""

    def test_same_time_urgent_preempts_rest_of_cohort(self):
        sim = Simulator()
        order = []
        first = sim.timeout(1.0)
        second = sim.timeout(1.0)

        def first_cb(_ev):
            order.append("first")
            sim.call_at(1.0, lambda: order.append("urgent"))

        first.callbacks.append(first_cb)
        second.callbacks.append(lambda _ev: order.append("second"))
        sim.run()
        # Serial order: the urgent event outranks `second` at the same
        # timestamp, so it must run between the two cohort members.
        assert order == ["first", "urgent", "second"]

    def test_callback_cancels_later_cohort_member(self):
        sim = Simulator()
        order = []
        first = sim.timeout(1.0)
        second = sim.timeout(1.0)
        third = sim.timeout(1.0)
        first.callbacks.append(lambda _ev: second.cancel())
        second.callbacks.append(lambda _ev: order.append("second"))
        third.callbacks.append(lambda _ev: order.append("third"))
        sim.run()
        assert order == ["third"]
        assert sim.events_processed == 2  # the cancelled one never counts

    def test_until_event_mid_cohort_pushes_remainder_back(self):
        sim = Simulator()
        order = []
        first = sim.timeout(1.0, value="stop-here")
        second = sim.timeout(1.0)
        second.callbacks.append(lambda _ev: order.append("second"))
        assert sim.run(until=first) == "stop-here"
        # The unprocessed cohort remainder is back on the heap, exactly
        # as serial step() would have left it.
        assert order == []
        assert sim.peek() == 1.0
        sim.run()
        assert order == ["second"]

    def test_undefused_failure_mid_cohort_preserves_remainder(self):
        sim = Simulator()
        seen = []
        sim.event().fail(RuntimeError("boom"))
        survivor = sim.timeout(0.0)
        survivor.callbacks.append(lambda _ev: seen.append(sim.now))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert sim.events_processed == 1
        assert seen == []
        sim.run()  # resumable: the survivor still fires
        assert seen == [0.0]
        assert sim.events_processed == 2

    def test_trace_matches_serial_step_on_colliding_timestamps(self):
        def build(seed):
            sim = Simulator(seed=seed)
            delays = sim.rng.stream("t").integers(0, 5, size=40)
            for d in delays:
                sim.timeout(float(d))
            return sim

        serial, trace_serial = build(1), []
        serial.add_trace_hook(lambda *entry: trace_serial.append(entry))
        while serial.peek() != float("inf"):
            serial.step()

        cohort, trace_cohort = build(1), []
        cohort.add_trace_hook(lambda *entry: trace_cohort.append(entry))
        cohort.run()

        assert trace_serial == trace_cohort
        assert serial.events_processed == cohort.events_processed
