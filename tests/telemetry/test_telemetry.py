"""Telemetry units: metrics, spans, sessions, and the null-sink posture."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    NOOP_SPAN,
    Counter,
    Gauge,
    Histogram,
    InMemorySink,
    MetricsRegistry,
    Telemetry,
)
from repro.telemetry import facade as telemetry


class TestCounter:
    def test_inc_and_snapshot(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.snapshot() == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("x").inc(-1.0)

    def test_merge(self):
        a, b = Counter("x"), Counter("x")
        a.inc(2)
        b.inc(3)
        a.merge(b)
        assert a.snapshot() == 5.0


class TestGauge:
    def test_tracks_extremes(self):
        g = Gauge("depth")
        for v in (5.0, 1.0, 9.0):
            g.set(v)
        assert g.snapshot() == {"last": 9.0, "min": 1.0, "max": 9.0, "n": 3}

    def test_empty_snapshot_is_zeroes(self):
        assert Gauge("d").snapshot() == {"last": 0.0, "min": 0.0, "max": 0.0, "n": 0}

    def test_merge_last_write_wins(self):
        a, b = Gauge("d"), Gauge("d")
        a.set(4.0)
        b.set(7.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["last"] == 7.0 and snap["max"] == 7.0 and snap["n"] == 2


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == {"1.0": 1, "10.0": 1, "inf": 1}
        assert snap["min"] == 0.5 and snap["max"] == 50.0

    def test_merge_elementwise(self):
        a = Histogram("lat", bounds=(1.0, 10.0))
        b = Histogram("lat", bounds=(1.0, 10.0))
        a.observe(0.5)
        b.observe(0.7)
        b.observe(20.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"]["1.0"] == 2 and snap["buckets"]["inf"] == 1

    def test_merge_mismatched_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("a", bounds=(1.0,)).merge(Histogram("a", bounds=(2.0,)))

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("a", bounds=(2.0, 1.0))

    def test_observe_many_matches_scalar_observe(self):
        import numpy as np

        values = np.array([0.5, 5.0, 50.0, 1.0, 9.999, 10.0, 1e-9, 7.25])
        batched = Histogram("lat", bounds=(1.0, 10.0))
        batched.observe_many(values)
        scalar = Histogram("lat", bounds=(1.0, 10.0))
        for v in values.tolist():
            scalar.observe(v)
        # Bit-identical, including the float total: observe_many must
        # accumulate in input order, not via pairwise numpy summation.
        assert batched.snapshot() == scalar.snapshot()
        assert batched.total == scalar.total

    def test_observe_many_empty(self):
        import numpy as np

        h = Histogram("lat", bounds=(1.0, 10.0))
        h.observe_many(np.array([]))
        assert h.count == 0

    def test_observe_many_then_observe_compose(self):
        import numpy as np

        h = Histogram("lat", bounds=(1.0, 10.0))
        h.observe_many(np.array([0.5, 5.0]))
        h.observe(50.0)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == {"1.0": 1, "10.0": 1, "inf": 1}
        assert snap["min"] == 0.5 and snap["max"] == 50.0


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_snapshot_sorted_and_sectioned(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a", "b"]

    def test_merge_folds_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.gauge("g").set(3.0)
        b.histogram("h").observe(4.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["c"] == 3.0
        assert snap["gauges"]["g"]["last"] == 3.0
        assert snap["histograms"]["h"]["count"] == 1


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        sink = InMemorySink()
        tel = Telemetry(sink)
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        (inner,) = sink.by_name("inner")
        (outer,) = sink.by_name("outer")
        assert inner.parent == "outer" and inner.depth == 1
        assert outer.parent is None and outer.depth == 0
        assert tel._span_stack == []

    def test_span_feeds_host_histogram(self):
        tel = Telemetry()
        with tel.span("work"):
            pass
        snap = tel.snapshot()
        assert snap["histograms"]["host.span.work_s"]["count"] == 1

    def test_sequential_spans_are_siblings(self):
        sink = InMemorySink()
        tel = Telemetry(sink)
        with tel.span("a"):
            pass
        with tel.span("b"):
            pass
        assert sink.by_name("b")[0].parent is None


class TestNullSinkPosture:
    def test_off_by_default(self):
        assert telemetry.active() is None

    def test_wrappers_are_noops_when_off(self):
        # must not raise, must not install anything
        telemetry.count("x")
        telemetry.gauge("x", 1.0)
        telemetry.observe("x", 1.0)
        assert telemetry.active() is None

    def test_disabled_span_is_the_shared_singleton(self):
        s = telemetry.span("anything")
        assert s is NOOP_SPAN
        with s:
            pass  # no state, no error

    def test_session_scopes_and_restores(self):
        assert telemetry.active() is None
        with telemetry.session() as tel:
            assert telemetry.active() is tel
            telemetry.count("hits")
            assert tel.snapshot()["counters"]["hits"] == 1.0
        assert telemetry.active() is None

    def test_sessions_nest(self):
        with telemetry.session() as outer:
            with telemetry.session() as inner:
                assert telemetry.active() is inner
            assert telemetry.active() is outer

    def test_install_uninstall(self):
        tel = telemetry.install()
        try:
            assert telemetry.active() is tel
        finally:
            telemetry.uninstall()
        assert telemetry.active() is None


class TestInstrumentedSimulation:
    def test_simulation_identical_with_and_without_telemetry(self):
        from repro.api import SimulationConfig, TelemetryConfig, run_simulation

        base = SimulationConfig(rm="slurm", n_nodes=64, seed=5, n_jobs=40, horizon_s=6 * 3600.0)
        plain = run_simulation(base)
        measured = run_simulation(
            base, telemetry=TelemetryConfig(enabled=True)
        )
        assert plain.telemetry is None
        assert measured.telemetry is not None
        assert measured.telemetry["counters"]["sim.events"] > 0
        # the measurement must not perturb the simulation
        assert plain.report.master == measured.report.master
        assert plain.report.schedule == measured.report.schedule
