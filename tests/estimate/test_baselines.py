"""Tests for baseline estimators: user, Last-2, windowed models, IRPA, TRIP, PREP."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimate import (
    IrpaEstimator,
    Last2Estimator,
    PrepEstimator,
    TripEstimator,
    UserEstimator,
    evaluate_estimator,
    svm_estimator,
)
from repro.estimate.baselines import WindowedModelEstimator
from repro.estimate.ridge import BayesianRidge
from repro.sched.job import Job
from repro.workload import WorkloadConfig, generate_trace


def job(job_id, name="a.sh", user="u", runtime=100.0, est=150.0, submit=0.0):
    return Job(job_id, name, user, 2, runtime, est, submit)


class TestUserEstimator:
    def test_echoes_user_estimate(self):
        est = UserEstimator()
        assert est.estimate(job(1, est=321.0), now=0.0) == 321.0
        assert est.estimate(job(2, est=None), now=0.0) is None

    def test_observe_is_noop(self):
        est = UserEstimator()
        est.observe(job(1), now=0.0)
        assert est.estimate(job(2, est=5.0), now=0.0) == 5.0


class TestLast2:
    def test_mean_of_last_two(self):
        est = Last2Estimator()
        est.observe(job(1, user="u", runtime=100.0), now=0.0)
        est.observe(job(2, user="u", runtime=200.0), now=1.0)
        assert est.estimate(job(3, user="u"), now=2.0) == 150.0

    def test_window_slides(self):
        est = Last2Estimator()
        for i, rt in enumerate([10.0, 20.0, 30.0]):
            est.observe(job(i, user="u", runtime=rt), now=float(i))
        assert est.estimate(job(9, user="u"), now=5.0) == 25.0

    def test_per_user_isolation(self):
        est = Last2Estimator()
        est.observe(job(1, user="alice", runtime=100.0), now=0.0)
        assert est.estimate(job(2, user="bob", est=777.0), now=1.0) == 777.0

    def test_falls_back_to_user_estimate(self):
        est = Last2Estimator()
        assert est.estimate(job(1, est=42.0), now=0.0) == 42.0


class TestWindowedModel:
    def test_none_before_min_history(self):
        est = WindowedModelEstimator(BayesianRidge, name="br", window=50, min_history=10)
        for i in range(5):
            est.observe(job(i), now=float(i))
        assert est.estimate(job(99), now=10.0) is None

    def test_estimates_after_history(self):
        est = WindowedModelEstimator(BayesianRidge, name="br", window=50, min_history=10)
        for i in range(15):
            est.observe(job(i, runtime=500.0), now=float(i))
        pred = est.estimate(job(99), now=20.0)
        assert pred is not None
        assert 100.0 < pred < 2500.0

    def test_invalid_window(self):
        with pytest.raises(EstimationError):
            WindowedModelEstimator(BayesianRidge, name="x", window=5, min_history=10)


class TestPrep:
    def test_groups_by_name(self):
        est = PrepEstimator()
        est.observe(job(1, name="x.sh", runtime=100.0), now=0.0)
        est.observe(job(2, name="x.sh", runtime=120.0), now=1.0)
        pred = est.estimate(job(3, name="x.sh"), now=2.0)
        assert 100.0 <= pred <= 120.0

    def test_global_fallback(self):
        est = PrepEstimator()
        est.observe(job(1, name="x.sh", runtime=100.0), now=0.0)
        assert est.estimate(job(2, name="unknown.sh"), now=1.0) == pytest.approx(100.0)

    def test_no_history_returns_none(self):
        assert PrepEstimator().estimate(job(1), now=0.0) is None


class TestOnTrace:
    """Qualitative Fig. 11b orderings on a short synthetic trace."""

    @pytest.fixture(scope="class")
    def jobs(self):
        return generate_trace(WorkloadConfig(max_nodes=128, jobs_per_day=2000.0), 1200, seed=7)

    def test_last2_beats_user(self, jobs):
        user = evaluate_estimator(UserEstimator(), jobs, warmup=100)
        last2 = evaluate_estimator(Last2Estimator(), jobs, warmup=100)
        assert last2.aea > user.aea

    def test_prep_beats_last2(self, jobs):
        last2 = evaluate_estimator(Last2Estimator(), jobs, warmup=100)
        prep = evaluate_estimator(PrepEstimator(), jobs, warmup=100)
        assert prep.aea > last2.aea

    def test_trip_runs_and_estimates(self, jobs):
        rep = evaluate_estimator(TripEstimator(window=300, refit_every=100), jobs[:600], warmup=50)
        assert rep.n_estimated > 100
        assert 0.0 < rep.aea <= 1.0

    def test_irpa_runs_and_estimates(self, jobs):
        rep = evaluate_estimator(
            IrpaEstimator(window=200, refit_every=150), jobs[:400], warmup=50
        )
        assert rep.n_estimated > 50
        assert 0.0 < rep.aea <= 1.0

    def test_svm_runs_and_estimates(self, jobs):
        rep = evaluate_estimator(svm_estimator(window=300), jobs[:500], warmup=50)
        assert rep.n_estimated > 100
        assert 0.0 < rep.aea <= 1.0
