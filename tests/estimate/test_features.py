"""Tests for feature encoding."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimate.features import N_FEATURES, FeatureEncoder, submission_hour
from repro.sched.job import Job


def job(name="app.sh", user="alice", nodes=8, submit=0.0, cores=4):
    return Job(0, name, user, nodes, 100.0, None, submit, cores_per_node=cores)


class TestRaw:
    def test_dimension(self):
        assert FeatureEncoder.raw(job()).shape == (N_FEATURES,)

    def test_same_name_same_signature(self):
        a = FeatureEncoder.raw(job(name="x.sh"))
        b = FeatureEncoder.raw(job(name="x.sh", user="bob"))
        np.testing.assert_array_equal(a[:6], b[:6])

    def test_different_names_differ(self):
        a = FeatureEncoder.raw(job(name="x.sh"))
        b = FeatureEncoder.raw(job(name="y.sh"))
        assert not np.array_equal(a[:6], b[:6])

    # feature layout: [0:6] name hash, [6:9] user hash,
    # [9] log2 nodes, [10] log2 cores, [11] sin(hour), [12] cos(hour)

    def test_hour_cyclic_continuity(self):
        # 23:00 and 00:00 should be close in the (sin, cos) plane
        a = FeatureEncoder.raw(job(submit=23 * 3600.0))
        b = FeatureEncoder.raw(job(submit=0.0))
        c = FeatureEncoder.raw(job(submit=12 * 3600.0))
        d_ab = np.linalg.norm(a[11:13] - b[11:13])
        d_ac = np.linalg.norm(a[11:13] - c[11:13])
        assert d_ab < d_ac

    def test_node_feature_monotone(self):
        small = FeatureEncoder.raw(job(nodes=2))
        big = FeatureEncoder.raw(job(nodes=2048))
        assert big[9] > small[9]
        assert big[10] > small[10]  # cores scale with nodes

    def test_submission_hour(self):
        assert submission_hour(job(submit=3600.0 * 25)) == 1


class TestEncoder:
    def test_fit_empty_rejected(self):
        with pytest.raises(EstimationError):
            FeatureEncoder().fit([])

    def test_transform_before_fit_rejected(self):
        with pytest.raises(EstimationError):
            FeatureEncoder().transform([job()])
        with pytest.raises(EstimationError):
            FeatureEncoder().transform_one(job())

    def test_standardisation(self):
        jobs = [job(name=f"a{i}.sh", nodes=2**(i % 8 + 1), submit=i * 3600.0) for i in range(50)]
        enc = FeatureEncoder()
        X = enc.fit_transform(jobs)
        assert X.shape == (50, N_FEATURES)
        assert enc.fitted
        # transform_one matches row-wise transform
        np.testing.assert_allclose(enc.transform_one(jobs[3]), X[3])

    def test_constant_dims_pass_through(self):
        jobs = [job() for _ in range(5)]  # all identical
        X = FeatureEncoder().fit_transform(jobs)
        assert np.isfinite(X).all()

    def test_raw_matrix_empty(self):
        assert FeatureEncoder.raw_matrix([]).shape == (0, N_FEATURES)
