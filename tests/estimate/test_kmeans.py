"""Tests for K-means++ and the elbow method."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.estimate.kmeans import KMeans, elbow_k


def blobs(k=3, n_per=50, spread=0.1, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 10, size=(k, 4))
    X = np.concatenate([c + spread * rng.normal(size=(n_per, 4)) for c in centers])
    return X, centers


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        X, _ = blobs(k=3)
        km = KMeans(3, rng=np.random.default_rng(1)).fit(X)
        labels = km.labels_
        # Each blob of 50 should be a single cluster
        for b in range(3):
            block = labels[b * 50 : (b + 1) * 50]
            assert len(set(block.tolist())) == 1

    def test_inertia_decreases_with_k(self):
        X, _ = blobs(k=4)
        inertias = [
            KMeans(k, rng=np.random.default_rng(0)).fit(X).inertia_ for k in (1, 2, 4, 8)
        ]
        assert inertias == sorted(inertias, reverse=True)

    def test_predict_matches_fit_labels(self):
        X, _ = blobs()
        km = KMeans(3, rng=np.random.default_rng(2)).fit(X)
        np.testing.assert_array_equal(km.predict(X), km.labels_)

    def test_predict_one(self):
        X, _ = blobs()
        km = KMeans(3, rng=np.random.default_rng(2)).fit(X)
        assert km.predict_one(X[0]) == km.labels_[0]

    def test_more_clusters_than_points_clamped(self):
        X = np.arange(6, dtype=float).reshape(3, 2)
        km = KMeans(10, rng=np.random.default_rng(0)).fit(X)
        assert km.n_clusters == 3

    def test_clamps_to_distinct_rows(self):
        # 6 rows but only 2 distinct values: K must clamp to 2, not 6.
        X = np.array([[1.0], [1.0], [1.0], [5.0], [5.0], [5.0]])
        km = KMeans(6, rng=np.random.default_rng(0)).fit(X)
        assert km.n_clusters == 2
        assert km.inertia_ == pytest.approx(0.0)

    def test_identical_points(self):
        X = np.ones((20, 3))
        km = KMeans(4, rng=np.random.default_rng(0)).fit(X)
        assert km.n_clusters == 1
        assert km.inertia_ == pytest.approx(0.0)

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            KMeans(0)
        with pytest.raises(EstimationError):
            KMeans(2).fit(np.empty((0, 3)))
        with pytest.raises(EstimationError):
            KMeans(2).predict(np.ones((2, 2)))

    def test_deterministic_given_rng(self):
        X, _ = blobs(seed=5)
        a = KMeans(3, rng=np.random.default_rng(9)).fit(X)
        b = KMeans(3, rng=np.random.default_rng(9)).fit(X)
        np.testing.assert_array_equal(a.labels_, b.labels_)

    @given(st.integers(1, 8), st.integers(10, 60))
    @settings(max_examples=20, deadline=None)
    def test_labels_in_range(self, k, n):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(n, 3))
        km = KMeans(k, rng=rng).fit(X)
        assert km.labels_.min() >= 0
        assert km.labels_.max() < km.n_clusters


class TestElbow:
    def test_finds_knee_on_blobs(self):
        X, _ = blobs(k=4, n_per=40, spread=0.05, seed=3)
        k = elbow_k(X, k_max=10, rng=np.random.default_rng(0))
        assert 3 <= k <= 6  # the knee should sit near the true k

    def test_single_point(self):
        assert elbow_k(np.ones((1, 2))) == 1

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            elbow_k(np.empty((0, 2)))

    @pytest.mark.parametrize("window", list(range(2, 15)))
    def test_short_history_windows(self, window):
        """K never overflows the distinct sample count at window sizes 2-14.

        Regression for the estimator's per-user history windows: short
        windows routinely contain repeated wall times (the same binary
        resubmitted), and the elbow sweep used to fit K up to the *row*
        count, crowning a bogus knee past the distinct-value tail.
        """
        rng = np.random.default_rng(window)
        # At most 3 distinct runtimes, repeated to fill the window.
        distinct = np.array([[60.0], [600.0], [3600.0]])[: min(3, window)]
        X = distinct[rng.integers(len(distinct), size=window)]
        n_distinct = np.unique(X, axis=0).shape[0]
        k = elbow_k(X, k_max=25, rng=np.random.default_rng(0))
        assert 1 <= k <= n_distinct

    @pytest.mark.parametrize("window", list(range(2, 15)))
    def test_all_duplicate_window_returns_one(self, window):
        X = np.full((window, 1), 42.0)
        assert elbow_k(X, k_max=25, rng=np.random.default_rng(0)) == 1
