"""Tests for the ESLURM estimation framework and its metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.estimate import (
    EslurmEstimator,
    EstimatorConfig,
    estimation_accuracy,
    evaluate_estimator,
)
from repro.sched.job import Job
from repro.workload import WorkloadConfig, generate_trace

HOUR = 3600.0


def quick_config(**kw):
    defaults = dict(window=200, min_history=20, refresh_jobs=40, k_clusters=8)
    defaults.update(kw)
    return EstimatorConfig(**defaults)


def job(job_id, name="a.sh", user="u", runtime=100.0, est=150.0, submit=0.0, nodes=2):
    return Job(job_id, name, user, nodes, runtime, est, submit)


class TestEstimationAccuracy:
    def test_eq4_overestimate(self):
        assert estimation_accuracy(200.0, 100.0) == 0.5

    def test_eq4_underestimate(self):
        assert estimation_accuracy(50.0, 100.0) == 0.5

    def test_exact(self):
        assert estimation_accuracy(100.0, 100.0) == 1.0

    def test_invalid(self):
        with pytest.raises(EstimationError):
            estimation_accuracy(0.0, 10.0)


class TestConfig:
    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            EstimatorConfig(window=5, min_history=30)
        with pytest.raises(ConfigurationError):
            EstimatorConfig(slack=0.9)
        with pytest.raises(ConfigurationError):
            EstimatorConfig(aea_gate=2.0)
        with pytest.raises(ConfigurationError):
            EstimatorConfig(refresh_interval_s=0)
        with pytest.raises(ConfigurationError):
            EstimatorConfig(k_clusters=0)


class TestFrameworkLifecycle:
    def test_no_model_passes_user_estimate_through(self):
        est = EslurmEstimator(quick_config())
        j = job(1, est=500.0)
        assert est.estimate(j, now=0.0) == 500.0
        assert not est.trained

    def test_trains_after_min_history(self):
        est = EslurmEstimator(quick_config())
        for i in range(25):
            est.observe(job(i, runtime=100.0), now=float(i))
        est.estimate(job(99), now=30.0)
        assert est.trained
        assert est.trainings == 1

    def test_retrains_on_interval(self):
        cfg = quick_config(refresh_interval_s=10 * HOUR, refresh_jobs=10_000)
        est = EslurmEstimator(cfg)
        for i in range(25):
            est.observe(job(i), now=float(i))
        est.estimate(job(100), now=1.0)
        est.estimate(job(101), now=2.0)
        assert est.trainings == 1
        est.estimate(job(102), now=1.0 + 11 * HOUR)
        assert est.trainings == 2

    def test_retrains_on_job_count(self):
        cfg = quick_config(refresh_jobs=30)
        est = EslurmEstimator(cfg)
        for i in range(25):
            est.observe(job(i), now=float(i))
        est.estimate(job(100), now=26.0)
        for i in range(40):
            est.observe(job(200 + i), now=30.0 + i)
        est.estimate(job(300), now=80.0)
        assert est.trainings == 2

    def test_known_name_gets_model_estimate(self):
        cfg = quick_config(aea_gate=0.0)
        est = EslurmEstimator(cfg)
        for i in range(50):
            est.observe(job(i, name="app.sh", runtime=1000.0), now=float(i))
        pred = est.estimate(job(99, name="app.sh", est=99999.0), now=60.0)
        assert pred is not None
        # model should land near the true 1000 s, far from the user's 99999
        assert 500.0 < pred < 3000.0

    def test_unknown_name_falls_back_to_user(self):
        est = EslurmEstimator(quick_config(aea_gate=0.0))
        for i in range(50):
            est.observe(job(i, name="known.sh", runtime=1000.0), now=float(i))
        est.estimate(job(98, name="known.sh"), now=55.0)  # triggers training
        pred = est.estimate(job(99, name="brand-new.sh", est=777.0), now=60.0)
        assert pred == 777.0

    def test_unknown_name_with_record_memory(self):
        est = EslurmEstimator(quick_config(aea_gate=0.0))
        for i in range(50):
            est.observe(job(i, name="known.sh", runtime=1000.0), now=float(i))
        est.estimate(job(98, name="known.sh"), now=55.0)
        # one completion of the new name: record module memory kicks in
        est.observe(job(60, name="new.sh", runtime=400.0), now=56.0)
        pred = est.estimate(job(99, name="new.sh", est=99999.0), now=60.0)
        assert 300.0 < pred < 800.0

    def test_slack_applied(self):
        cfg = quick_config(aea_gate=0.0, slack=2.0, q_sigma=0.0, resid_floor=0.0)
        est = EslurmEstimator(cfg)
        for i in range(50):
            est.observe(job(i, name="app.sh", runtime=1000.0), now=float(i))
        pred = est.estimate(job(99, name="app.sh", est=None), now=60.0)
        assert pred == pytest.approx(2000.0, rel=0.25)

    def test_aea_gate_blocks_model_when_low(self):
        cfg = quick_config(aea_gate=0.99)  # essentially never trust model
        est = EslurmEstimator(cfg)
        for i in range(60):
            est.observe(job(i, name="app.sh", runtime=1000.0), now=float(i))
        pred = est.estimate(job(99, name="app.sh", est=55_555.0), now=70.0)
        assert pred == 55_555.0

    def test_record_module_updates_aea(self):
        cfg = quick_config(aea_gate=0.0)
        est = EslurmEstimator(cfg)
        for i in range(50):
            est.observe(job(i, name="app.sh", runtime=1000.0), now=float(i))
        j = job(99, name="app.sh")
        est.estimate(j, now=60.0)
        before = est.average_estimation_accuracy()
        est.observe(j, now=61.0)
        after = est.average_estimation_accuracy()
        assert after != before or est._aea_n  # EA recorded

    def test_cluster_aea_unknown_cluster_rejected(self):
        est = EslurmEstimator(quick_config())
        with pytest.raises(EstimationError):
            est.cluster_aea(0)


class TestEndToEnd:
    def test_eslurm_beats_user_estimates(self):
        jobs = generate_trace(WorkloadConfig.tianhe2a(max_nodes=256), 1200, seed=3)
        from repro.estimate import UserEstimator

        user_rep = evaluate_estimator(UserEstimator(), jobs, warmup=100)
        cfg = EstimatorConfig(aea_gate=0.0, k_clusters=40)
        es_rep = evaluate_estimator(EslurmEstimator(cfg), jobs, warmup=100)
        assert es_rep.aea > user_rep.aea
        assert es_rep.underestimate_rate < 0.5

    def test_deterministic(self):
        jobs = generate_trace(WorkloadConfig(max_nodes=64), 600, seed=4)
        reps = [
            evaluate_estimator(
                EslurmEstimator(EstimatorConfig(aea_gate=0.0), rng=np.random.default_rng(1)),
                jobs,
                warmup=50,
            )
            for _ in range(2)
        ]
        assert reps[0].aea == reps[1].aea
