"""Tests for the from-scratch regressors: SVR, forest, ridge, Tobit."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimate import SVR, BayesianRidge, RandomForestRegressor, TobitRegressor
from repro.estimate.forest import RegressionTree


def linear_data(n=150, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 1.0 + noise * rng.normal(size=n)
    return X, y


class TestSVR:
    def test_fits_linear_function_rbf(self):
        X, y = linear_data()
        m = SVR().fit(X, y)
        pred = m.predict(X)
        assert np.corrcoef(pred, y)[0, 1] > 0.98

    def test_linear_kernel(self):
        X, y = linear_data()
        m = SVR(kernel="linear").fit(X, y)
        assert np.corrcoef(m.predict(X), y)[0, 1] > 0.98

    def test_composite_kernel(self):
        X, y = linear_data()
        m = SVR(kernel="rbf+linear").fit(X, y)
        assert np.corrcoef(m.predict(X), y)[0, 1] > 0.98

    def test_far_field_reverts_to_mean(self):
        X, y = linear_data()
        m = SVR().fit(X, y)
        far = m.predict(np.full((1, 4), 100.0))[0]
        assert abs(far - y.mean()) < 2.0

    def test_constant_target(self):
        X, _ = linear_data(n=40)
        m = SVR().fit(X, np.full(40, 7.0))
        np.testing.assert_allclose(m.predict(X), 7.0, atol=0.1)

    def test_predict_one(self):
        X, y = linear_data(n=50)
        m = SVR().fit(X, y)
        assert m.predict_one(X[0]) == pytest.approx(m.predict(X[:1])[0])

    def test_unfitted_predict_rejected(self):
        with pytest.raises(EstimationError):
            SVR().predict(np.ones((1, 3)))

    def test_invalid_params(self):
        with pytest.raises(EstimationError):
            SVR(C=0)
        with pytest.raises(EstimationError):
            SVR(kernel="poly")
        with pytest.raises(EstimationError):
            SVR().fit(np.ones((0, 3)), np.ones(0))

    def test_n_support(self):
        X, y = linear_data(n=60)
        m = SVR().fit(X, y)
        assert 0 < m.n_support <= 60


class TestRegressionTree:
    def test_step_function(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X.ravel() > 0.5).astype(float) * 10
        tree = RegressionTree(max_depth=3).fit(X, y)
        pred = tree.predict(X)
        assert abs(pred[10] - 0.0) < 1.0
        assert abs(pred[90] - 10.0) < 1.0

    def test_depth_limit(self):
        X, y = linear_data(n=100)
        shallow = RegressionTree(max_depth=1).fit(X, y).predict(X)
        deep = RegressionTree(max_depth=8).fit(X, y).predict(X)
        assert ((deep - y) ** 2).mean() < ((shallow - y) ** 2).mean()

    def test_invalid_params(self):
        with pytest.raises(EstimationError):
            RegressionTree(max_depth=0)


class TestRandomForest:
    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(X[:, 0]) * 3 + X[:, 1] ** 2
        m = RandomForestRegressor(n_estimators=20, rng=rng).fit(X, y)
        pred = m.predict(X)
        assert np.corrcoef(pred, y)[0, 1] > 0.9

    def test_deterministic_given_rng(self):
        X, y = linear_data(n=80)
        a = RandomForestRegressor(10, rng=np.random.default_rng(3)).fit(X, y).predict(X)
        b = RandomForestRegressor(10, rng=np.random.default_rng(3)).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_unfitted_rejected(self):
        with pytest.raises(EstimationError):
            RandomForestRegressor().predict(np.ones((1, 2)))

    def test_invalid(self):
        with pytest.raises(EstimationError):
            RandomForestRegressor(n_estimators=0)

    def test_predict_one(self):
        X, y = linear_data(n=50)
        m = RandomForestRegressor(5).fit(X, y)
        assert m.predict_one(X[0]) == pytest.approx(m.predict(X[:1])[0])


class TestBayesianRidge:
    def test_recovers_coefficients(self):
        X, y = linear_data(n=300, noise=0.1)
        m = BayesianRidge().fit(X, y)
        np.testing.assert_allclose(m.coef_[:2], [3.0, -2.0], atol=0.1)
        assert m.intercept_ == pytest.approx(1.0, abs=0.1)

    def test_shrinks_on_noise(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 10))
        y = rng.normal(size=100)  # pure noise
        m = BayesianRidge().fit(X, y)
        assert np.abs(m.coef_).max() < 0.5

    def test_unfitted_rejected(self):
        with pytest.raises(EstimationError):
            BayesianRidge().predict(np.ones((1, 2)))


class TestTobit:
    def test_matches_ols_without_censoring(self):
        X, y = linear_data(n=200, noise=0.1)
        m = TobitRegressor().fit(X, y)
        np.testing.assert_allclose(m.coef_[:2], [3.0, -2.0], atol=0.15)

    def test_censoring_correction(self):
        # True model y = 2x; censor everything above 1.0.  A naive OLS on
        # censored y underestimates the slope; Tobit should recover it.
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(400, 1))
        y_true = 2.0 * X.ravel() + 0.1 * rng.normal(size=400)
        c = 1.0
        y_obs = np.minimum(y_true, c)
        censored = y_true >= c
        naive = np.polyfit(X.ravel(), y_obs, 1)[0]
        m = TobitRegressor().fit(X, y_obs, censored=censored)
        assert abs(m.coef_[0] - 2.0) < abs(naive - 2.0)

    def test_bad_mask_rejected(self):
        X, y = linear_data(n=20)
        with pytest.raises(EstimationError):
            TobitRegressor().fit(X, y, censored=np.ones(5, dtype=bool))

    def test_unfitted_rejected(self):
        with pytest.raises(EstimationError):
            TobitRegressor().predict(np.ones((1, 2)))
