"""Tests for the latency/bandwidth fabric."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.network import FabricConfig, NetworkFabric
from repro.network.message import Message, MessageKind
from repro.simkit import Simulator


def build(n=128, cfg=None, seed=0):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(n_nodes=n).build(sim)
    return sim, cluster, NetworkFabric(sim, cluster, cfg)


class TestFabricConfig:
    def test_defaults_valid(self):
        cfg = FabricConfig()
        assert cfg.bytes_per_second == pytest.approx(25e9 / 8)
        assert cfg.dead_node_penalty_s == pytest.approx(4.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            FabricConfig(bandwidth_gbps=0)
        with pytest.raises(ConfigurationError):
            FabricConfig(retries=-1)
        with pytest.raises(ConfigurationError):
            FabricConfig(hop_latency_s=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            FabricConfig(jitter_frac=1.0)


class TestTransferDelay:
    def test_delay_components(self):
        _, _, fabric = build()
        cfg = fabric.config
        # nodes 0 and 1 share a board
        d = fabric.transfer_delay(0, 1, 1000)
        expected = cfg.send_overhead_s + cfg.hop_latency_s[1] + 1000 / cfg.bytes_per_second
        assert d == pytest.approx(expected)

    def test_farther_hops_cost_more(self):
        _, cluster, fabric = build(n=2048)
        same_board = fabric.transfer_delay(0, 1, 100)
        cross_rack = fabric.transfer_delay(0, cluster.topology.nodes_per_rack, 100)
        assert cross_rack > same_board

    def test_bigger_messages_cost_more(self):
        _, _, fabric = build()
        assert fabric.transfer_delay(0, 1, 10_000_000) > fabric.transfer_delay(0, 1, 100)

    def test_master_id_mapped_safely(self):
        _, cluster, fabric = build(n=16)
        d = fabric.transfer_delay(cluster.master.node_id, 3, 100)
        assert d > 0

    def test_jitter_is_bounded_and_deterministic(self):
        cfg = FabricConfig(jitter_frac=0.1)
        _, _, f1 = build(cfg=cfg, seed=5)
        _, _, f2 = build(cfg=cfg, seed=5)
        d1 = [f1.transfer_delay(0, 1, 100) for _ in range(10)]
        d2 = [f2.transfer_delay(0, 1, 100) for _ in range(10)]
        assert d1 == d2
        base = FabricConfig().send_overhead_s
        for d in d1:
            assert 0.8 * base < d < 1.3 * base


class TestVectorizedDelays:
    def test_matches_scalar(self):
        _, _, fabric = build(n=1024)
        dsts = np.array([1, 7, 63, 200, 900])
        vec = fabric.transfer_delays(0, dsts, 500)
        scalar = [fabric.transfer_delay(0, int(d), 500) for d in dsts]
        np.testing.assert_allclose(vec, scalar, rtol=1e-12)

    def test_reachability_mask(self):
        _, cluster, fabric = build(n=10)
        cluster.fail_nodes([2, 4])
        mask = fabric.reachability(list(range(10)))
        assert list(np.nonzero(~mask)[0]) == [2, 4]


class TestAttemptAndDeliver:
    def test_attempt_reachable(self):
        _, _, fabric = build()
        delay, ok = fabric.attempt_delay(0, 1, 100)
        assert ok and delay < 1.0

    def test_attempt_dead_costs_penalty(self):
        _, cluster, fabric = build()
        cluster.fail_nodes([1])
        delay, ok = fabric.attempt_delay(0, 1, 100)
        assert not ok
        assert delay == fabric.config.dead_node_penalty_s

    def test_deliver_event(self):
        sim, _, fabric = build()
        msg = Message(MessageKind.HEARTBEAT, src=0, dst=1)

        def proc():
            got = yield fabric.deliver(msg)
            return (sim.now, got)

        p = sim.process(proc())
        sim.run()
        at, got = p.value
        assert got is msg
        assert at > 0

    def test_deliver_to_dead_returns_none_after_penalty(self):
        sim, cluster, fabric = build()
        cluster.fail_nodes([1])
        msg = Message(MessageKind.HEARTBEAT, src=0, dst=1)

        def proc():
            got = yield fabric.deliver(msg)
            return (sim.now, got)

        p = sim.process(proc())
        sim.run()
        at, got = p.value
        assert got is None
        assert at == pytest.approx(fabric.config.dead_node_penalty_s)
