"""Tests for the broadcast memoization layer."""

from repro.cluster import ClusterSpec
from repro.network import FabricConfig, NetworkFabric, StarBroadcast, TreeBroadcast
from repro.network.broadcast import MemoizedBroadcast
from repro.simkit import Simulator
from repro.telemetry import facade as telemetry


def build(n=128, seed=0, jitter=0.0):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(n_nodes=n).build(sim)
    fabric = NetworkFabric(sim, cluster, FabricConfig(jitter_frac=jitter))
    return sim, cluster, fabric


class TestCaching:
    def test_hit_on_repeat_miss_on_first(self):
        _, _, fabric = build()
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        targets = list(range(1, 128))
        a = memo.simulate(0, targets, 1024, fabric)
        b = memo.simulate(0, targets, 1024, fabric)
        assert (memo.misses, memo.hits) == (1, 1)
        assert a.makespan_s == b.makespan_s
        assert a.failed == b.failed

    def test_different_keys_are_distinct(self):
        _, _, fabric = build()
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        targets = list(range(1, 128))
        memo.simulate(0, targets, 1024, fabric)
        memo.simulate(0, targets, 2048, fabric)  # size differs
        memo.simulate(0, targets[:-1], 1024, fabric)  # targets differ
        memo.simulate(1, targets[1:], 1024, fabric)  # root differs
        assert memo.misses == 4
        assert memo.hits == 0

    def test_version_bump_invalidates(self):
        _, cluster, fabric = build()
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        targets = list(range(1, 128))
        before = memo.simulate(0, targets, 1024, fabric)
        cluster.fail_nodes([5])
        after = memo.simulate(0, targets, 1024, fabric)
        assert memo.misses == 2  # version changed -> recompute
        assert before.failed == ()
        assert after.failed == (5,)

    def test_returns_copies_not_cached_instance(self):
        _, _, fabric = build()
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        targets = list(range(1, 128))
        a = memo.simulate(0, targets, 1024, fabric, record_arrivals=True)
        original = a.makespan_s
        a.makespan_s += 99.0  # callers add ack-wait in place
        a.arrivals[1] = -1.0
        b = memo.simulate(0, targets, 1024, fabric, record_arrivals=True)
        assert b.makespan_s == original
        assert b.arrivals[1] != -1.0

    def test_lru_eviction(self):
        _, _, fabric = build(n=16)
        memo = MemoizedBroadcast(StarBroadcast(), maxsize=2)
        memo.simulate(0, [1], 1024, fabric)
        memo.simulate(0, [2], 1024, fabric)
        memo.simulate(0, [3], 1024, fabric)  # evicts the [1] entry
        memo.simulate(0, [1], 1024, fabric)
        assert memo.misses == 4

    def test_new_fabric_clears_cache(self):
        _, _, fabric_a = build(seed=1)
        _, _, fabric_b = build(seed=2)
        memo = MemoizedBroadcast(StarBroadcast())
        memo.simulate(0, [1, 2], 1024, fabric_a)
        memo.simulate(0, [1, 2], 1024, fabric_b)
        assert memo.misses == 2

    def test_jitter_bypasses_cache(self):
        _, _, fabric = build(jitter=0.2)
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        targets = list(range(1, 128))
        memo.simulate(0, targets, 1024, fabric)
        memo.simulate(0, targets, 1024, fabric)
        assert (memo.misses, memo.hits) == (0, 0)


class TestTelemetryReplay:
    def test_hit_replays_recorded_delta(self):
        _, _, fabric = build()
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        targets = list(range(1, 128))
        with telemetry.session() as tel:
            memo.simulate(0, targets, 1024, fabric)
            after_miss = tel.snapshot()["counters"]["net.messages"]
            memo.simulate(0, targets, 1024, fabric)
            after_hit = tel.snapshot()["counters"]["net.messages"]
        assert memo.hits == 1
        assert after_miss > 0
        assert after_hit == 2 * after_miss  # hit merged the same delta

    def test_matches_uncached_run(self):
        targets = list(range(1, 128))

        def run(engine):
            _, _, fabric = build()
            with telemetry.session() as tel:
                engine.simulate(0, targets, 1024, fabric)
                engine.simulate(0, targets, 1024, fabric)
                return tel.snapshot()["counters"]

        cached = run(MemoizedBroadcast(TreeBroadcast(width=8)))
        plain = run(TreeBroadcast(width=8))
        for name in ("net.messages", "net.bytes"):
            assert cached[name] == plain[name]

    def test_telemetry_off_entry_recomputed_when_on(self):
        _, _, fabric = build()
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        targets = list(range(1, 128))
        memo.simulate(0, targets, 1024, fabric)  # no session: delta is None
        with telemetry.session() as tel:
            memo.simulate(0, targets, 1024, fabric)
            assert tel.snapshot()["counters"]["net.messages"] > 0
        assert memo.misses == 2  # stale None-delta entry was not served
