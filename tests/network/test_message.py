"""Tests for the message layer."""

from repro.network.message import DEFAULT_SIZES, Message, MessageKind


class TestMessage:
    def test_default_sizes_applied(self):
        msg = Message(MessageKind.JOB_LAUNCH, src=0, dst=1)
        assert msg.size_bytes == DEFAULT_SIZES[MessageKind.JOB_LAUNCH]

    def test_explicit_size_kept(self):
        msg = Message(MessageKind.HEARTBEAT, src=0, dst=1, size_bytes=999)
        assert msg.size_bytes == 999

    def test_every_kind_has_a_default_size(self):
        for kind in MessageKind:
            assert DEFAULT_SIZES[kind] > 0

    def test_launch_bigger_than_heartbeat(self):
        # credentials + env dwarf a ping — the Fig. 8a msg1/msg2 asymmetry
        assert DEFAULT_SIZES[MessageKind.JOB_LAUNCH] > DEFAULT_SIZES[MessageKind.HEARTBEAT]

    def test_ids_unique_and_increasing(self):
        a = Message(MessageKind.HEARTBEAT, 0, 1)
        b = Message(MessageKind.HEARTBEAT, 0, 1)
        assert b.msg_id > a.msg_id

    def test_reply_swaps_endpoints(self):
        req = Message(MessageKind.USER_REQUEST, src=7, dst=3, payload="squeue")
        rep = req.reply(MessageKind.USER_REPLY, payload="queue-dump")
        assert (rep.src, rep.dst) == (3, 7)
        assert rep.kind is MessageKind.USER_REPLY
        assert rep.size_bytes == DEFAULT_SIZES[MessageKind.USER_REPLY]
