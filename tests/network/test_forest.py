"""Forest (multi-root batched) broadcast evaluation.

The relay fan-out and heartbeat sweep hand many independent trees to
one ``simulate_forest`` call; the tree engine then runs a single
multi-root level sweep instead of one recursion per tree.  The whole
contract is bit-identity: every forest entry must equal its standalone
``simulate`` result, including dead-node takeover patches, and the
batching must fall back to the scalar path whenever its preconditions
(no jitter, a big enough forest) do not hold.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.fptree import FPTreeBroadcast, StaticSetPredictor
from repro.network import (
    FabricConfig,
    NetworkFabric,
    RingBroadcast,
    TreeBroadcast,
)
from repro.network.broadcast import MemoizedBroadcast
from repro.simkit import Simulator


def build(n=256, seed=0, jitter=0.0):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(n_nodes=n).build(sim)
    fabric = NetworkFabric(sim, cluster, FabricConfig(jitter_frac=jitter))
    return sim, cluster, fabric


def forest_tasks(n=256, parts=4):
    """Split [1, n) into ``parts`` disjoint trees rooted at their heads."""
    chunk = (n - 1) // parts
    tasks = []
    for p in range(parts):
        nodes = list(range(1 + p * chunk, 1 + (p + 1) * chunk))
        tasks.append((nodes[0], nodes[1:]))
    return tasks


def as_tuples(results):
    return [(r.structure, r.makespan_s, r.n_targets, r.failed, r.n_timeouts) for r in results]


class TestTreeForest:
    def test_forest_matches_per_task_simulate(self):
        engine = TreeBroadcast(width=8)
        _, _, fabric = build()
        tasks = forest_tasks()
        batched = engine.simulate_forest(tasks, 2048, fabric)
        scalar = [engine.simulate(root, targets, 2048, fabric) for root, targets in tasks]
        assert as_tuples(batched) == as_tuples(scalar)
        assert all(r.makespan_s > 0 for r in batched)

    def test_forest_matches_with_dead_nodes(self):
        # Dead inner nodes force the takeover patching; the batched
        # replay must land on the same makespans and failed sets.
        engine = TreeBroadcast(width=8)
        _, cluster, fabric = build()
        cluster.fail_nodes([2, 3, 70, 140, 200])
        tasks = forest_tasks()
        batched = engine.simulate_forest(tasks, 2048, fabric)
        scalar = [engine.simulate(root, targets, 2048, fabric) for root, targets in tasks]
        assert as_tuples(batched) == as_tuples(scalar)
        assert {n for r in batched for n in r.failed} == {2, 3, 70, 140, 200}

    def test_jitter_falls_back_to_sequential_scalar(self):
        # Jitter draws RNG per scalar transfer; batching would reorder
        # the draws.  Two identically-seeded fabrics, one forest call
        # vs. a hand-rolled sequential loop: same draw order, same
        # makespans.
        engine = TreeBroadcast(width=8)
        tasks = forest_tasks()
        _, _, fab_a = build(seed=11, jitter=0.2)
        _, _, fab_b = build(seed=11, jitter=0.2)
        batched = engine.simulate_forest(tasks, 2048, fab_a)
        scalar = [engine.simulate(root, targets, 2048, fab_b) for root, targets in tasks]
        assert as_tuples(batched) == as_tuples(scalar)

    def test_small_forest_falls_back(self):
        # Total targets below FAST_PATH_MIN_TARGETS: still correct.
        engine = TreeBroadcast(width=4)
        _, _, fabric = build(n=32)
        tasks = [(1, [2, 3, 4]), (10, [11, 12])]
        assert sum(len(t) for _, t in tasks) < TreeBroadcast.FAST_PATH_MIN_TARGETS
        batched = engine.simulate_forest(tasks, 1024, fabric)
        scalar = [engine.simulate(root, targets, 1024, fabric) for root, targets in tasks]
        assert as_tuples(batched) == as_tuples(scalar)

    def test_empty_targets_entry_is_a_zero_result(self):
        engine = TreeBroadcast(width=8)
        _, _, fabric = build()
        tasks = forest_tasks(parts=2) + [(250, [])]
        results = engine.simulate_forest(tasks, 2048, fabric)
        assert len(results) == 3
        empty = results[-1]
        assert empty.n_targets == 0
        assert empty.makespan_s == 0.0
        assert empty.failed == ()

    def test_forest_is_deterministic(self):
        engine = TreeBroadcast(width=8)
        tasks = forest_tasks()
        runs = []
        for _ in range(2):
            _, _, fabric = build(seed=5)
            runs.append(as_tuples(engine.simulate_forest(tasks, 4096, fabric)))
        assert runs[0] == runs[1]


class TestDefaultForest:
    def test_non_tree_engines_accept_forest_calls(self):
        # The base-class default is a sequential loop, so every engine
        # supports the forest entry point.
        engine = RingBroadcast()
        _, _, fabric = build(n=64)
        tasks = forest_tasks(n=64, parts=2)
        batched = engine.simulate_forest(tasks, 1024, fabric)
        scalar = [engine.simulate(root, targets, 1024, fabric) for root, targets in tasks]
        assert as_tuples(batched) == as_tuples(scalar)


class TestMemoizedForest:
    def test_repeat_forest_hits_cache(self):
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        _, _, fabric = build()
        tasks = forest_tasks()
        first = memo.simulate_forest(tasks, 2048, fabric)
        second = memo.simulate_forest(tasks, 2048, fabric)
        assert memo.misses == 1
        assert memo.hits == 1
        assert as_tuples(first) == as_tuples(second)

    def test_hits_hand_out_copies(self):
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        _, _, fabric = build()
        tasks = forest_tasks()
        first = memo.simulate_forest(tasks, 2048, fabric)
        second = memo.simulate_forest(tasks, 2048, fabric)
        # Call sites mutate results (ack-wait adjustments); the cache
        # must never hand out its stored instances.
        assert first[0] is not second[0]

    def test_cluster_version_bump_invalidates(self):
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        _, cluster, fabric = build()
        tasks = forest_tasks()
        before = memo.simulate_forest(tasks, 2048, fabric)
        cluster.fail_nodes([70])
        after = memo.simulate_forest(tasks, 2048, fabric)
        assert memo.misses == 2  # liveness version changed the key
        assert 70 in {n for r in after for n in r.failed}
        assert as_tuples(before) != as_tuples(after)

    def test_forest_and_scalar_keys_do_not_collide(self):
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        _, _, fabric = build()
        root, targets = forest_tasks(parts=1)[0]
        scalar = memo.simulate(root, targets, 2048, fabric)
        forest = memo.simulate_forest([(root, targets)], 2048, fabric)
        assert memo.misses == 2  # distinct cache entries, not a false hit
        assert forest[0].makespan_s == scalar.makespan_s

    def test_jitter_bypasses_cache(self):
        memo = MemoizedBroadcast(TreeBroadcast(width=8))
        _, _, fabric = build(jitter=0.2)
        tasks = forest_tasks()
        memo.simulate_forest(tasks, 2048, fabric)
        memo.simulate_forest(tasks, 2048, fabric)
        assert memo.hits == 0 and memo.misses == 0


class TestFPTreeForest:
    def test_fp_forest_matches_per_task_simulate(self):
        # Predicted-faulty nodes push to the leaves per part; the
        # batched evaluation must preserve each part's rearrangement.
        engine = FPTreeBroadcast(StaticSetPredictor({5, 80, 150}), width=8)
        _, _, fabric = build()
        tasks = forest_tasks()
        batched = engine.simulate_forest(tasks, 2048, fabric)
        scalar = [engine.simulate(root, targets, 2048, fabric) for root, targets in tasks]
        assert as_tuples(batched) == as_tuples(scalar)
        assert all(r.structure == "fp-tree" for r in batched)
