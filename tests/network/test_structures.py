"""Tests for the ring/star/shared-memory/tree broadcast engines."""

import pytest

from repro.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.network import (
    FabricConfig,
    NetworkFabric,
    RingBroadcast,
    SharedMemoryBroadcast,
    StarBroadcast,
    TreeBroadcast,
)
from repro.simkit import Simulator


def build(n=256, seed=0):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(n_nodes=n).build(sim)
    fabric = NetworkFabric(sim, cluster, FabricConfig())
    return sim, cluster, fabric


ENGINES = [RingBroadcast(), StarBroadcast(), SharedMemoryBroadcast(), TreeBroadcast(width=8)]


@pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.name)
class TestCommonBehaviour:
    def test_all_live_nodes_delivered(self, engine):
        _, cluster, fabric = build(n=64)
        targets = list(range(1, 64))
        res = engine.simulate(0, targets, 1024, fabric)
        assert res.failed == ()
        assert res.n_delivered == 63
        assert res.delivery_ratio == 1.0
        assert res.makespan_s > 0

    def test_failed_nodes_reported(self, engine):
        _, cluster, fabric = build(n=64)
        cluster.fail_nodes([5, 10, 20])
        res = engine.simulate(0, list(range(1, 64)), 1024, fabric)
        assert set(res.failed) == {5, 10, 20}
        assert res.n_delivered == 60

    def test_empty_targets(self, engine):
        _, _, fabric = build(n=8)
        res = engine.simulate(0, [], 1024, fabric)
        assert res.n_targets == 0
        assert res.delivery_ratio == 1.0

    def test_duplicate_targets_rejected(self, engine):
        _, _, fabric = build(n=8)
        with pytest.raises(ConfigurationError):
            engine.simulate(0, [1, 1], 1024, fabric)

    def test_invalid_size_rejected(self, engine):
        _, _, fabric = build(n=8)
        with pytest.raises(ConfigurationError):
            engine.simulate(0, [1], 0, fabric)

    def test_arrivals_recorded_on_request(self, engine):
        _, _, fabric = build(n=16)
        res = engine.simulate(0, list(range(1, 16)), 1024, fabric, record_arrivals=True)
        assert set(res.arrivals) == set(range(1, 16))
        assert all(at <= res.makespan_s + 1e-9 for at in res.arrivals.values())

    def test_deterministic(self, engine):
        r1 = build(n=64, seed=3)
        r2 = build(n=64, seed=3)
        res1 = engine.simulate(0, list(range(1, 64)), 2048, r1[2])
        res2 = engine.simulate(0, list(range(1, 64)), 2048, r2[2])
        assert res1.makespan_s == res2.makespan_s


class TestFailureSensitivity:
    """Fig. 8b's qualitative claims as invariants."""

    def sweep(self, engine, fractions, n=512, seed=7):
        times = []
        for frac in fractions:
            sim, cluster, fabric = build(n=n, seed=seed)
            cluster.fail_fraction(frac)
            res = engine.simulate(0, list(range(1, n)), 4096, fabric)
            times.append(res.makespan_s)
        return times

    def test_ring_grows_strongly_with_failures(self):
        t0, t30 = self.sweep(RingBroadcast(), [0.0, 0.3])
        assert t30 > t0 + 100  # 30% of 512 nodes x 4s penalty, fully serial

    def test_star_grows_with_failures(self):
        t0, t30 = self.sweep(StarBroadcast(concurrency=64), [0.0, 0.3])
        assert t30 > 2 * t0

    def test_shared_memory_flat_under_failures(self):
        t0, t30 = self.sweep(SharedMemoryBroadcast(), [0.0, 0.3])
        assert t30 == pytest.approx(t0, rel=0.05)

    def test_tree_grows_with_failures(self):
        t0, t30 = self.sweep(TreeBroadcast(width=16), [0.0, 0.3])
        assert t30 > 2 * t0


class TestRing:
    def test_serial_latency_scales_with_n(self):
        _, _, fabric = build(n=512)
        short = RingBroadcast().simulate(0, list(range(1, 65)), 1024, fabric)
        long = RingBroadcast().simulate(0, list(range(1, 512)), 1024, fabric)
        assert long.makespan_s > 5 * short.makespan_s

    def test_dead_node_adds_full_penalty(self):
        _, cluster, fabric = build(n=16)
        base = RingBroadcast().simulate(0, list(range(1, 16)), 1024, fabric).makespan_s
        cluster.fail_nodes([8])
        withfail = RingBroadcast().simulate(0, list(range(1, 16)), 1024, fabric).makespan_s
        assert withfail == pytest.approx(
            base - fabric.transfer_delay(7, 8, 1024) + fabric.config.dead_node_penalty_s,
            rel=0.2,
        )


class TestStar:
    def test_concurrency_speeds_up(self):
        _, _, fabric = build(n=512)
        slow = StarBroadcast(concurrency=1).simulate(0, list(range(1, 512)), 1024, fabric)
        fast = StarBroadcast(concurrency=64).simulate(0, list(range(1, 512)), 1024, fabric)
        assert fast.makespan_s < slow.makespan_s / 10

    def test_invalid_concurrency(self):
        with pytest.raises(ConfigurationError):
            StarBroadcast(concurrency=0)


class TestSharedMemory:
    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SharedMemoryBroadcast(poll_interval_s=0)

    def test_makespan_dominated_by_poll(self):
        _, _, fabric = build(n=64)
        engine = SharedMemoryBroadcast(poll_interval_s=2.0, post_overhead_s=0.1)
        res = engine.simulate(0, list(range(1, 64)), 1024, fabric)
        assert res.makespan_s == pytest.approx(2.1, abs=0.05)


class TestTree:
    def test_logarithmic_scaling(self):
        _, _, fabric = build(n=4096)
        t64 = TreeBroadcast(width=16).simulate(0, list(range(1, 64)), 1024, fabric).makespan_s
        t4096 = TreeBroadcast(width=16).simulate(0, list(range(1, 4096)), 1024, fabric).makespan_s
        # 64x more nodes should cost far less than 64x more time
        assert t4096 < 10 * t64

    def test_inner_failure_worse_than_leaf_failure(self):
        # Node at list position 0 of targets is the first inner child;
        # the last position is a leaf.
        n = 256
        _, cluster, fabric = build(n=n)
        targets = list(range(1, n))
        engine = TreeBroadcast(width=8)

        cluster.fail_nodes([targets[0]])  # inner node (first-layer child)
        inner = engine.simulate(0, targets, 1024, fabric).makespan_s
        cluster.recover_nodes([targets[0]])

        cluster.fail_nodes([targets[-1]])  # leaf
        leaf = engine.simulate(0, targets, 1024, fabric).makespan_s
        assert inner > leaf

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            TreeBroadcast(width=1)


def scalar_tree(width=8, per_target_root_s=0.0):
    engine = TreeBroadcast(width=width, per_target_root_s=per_target_root_s)
    # Instance attribute shadows the class threshold: force the recursive walk.
    engine.FAST_PATH_MIN_TARGETS = 10**9
    return engine


class TestTreeVectorizedEquivalence:
    """The numpy level-order walk must reproduce the recursion bit-for-bit."""

    @pytest.mark.parametrize("width", [2, 8, 32])
    @pytest.mark.parametrize("n", [65, 256, 1000])
    def test_all_alive(self, width, n):
        _, _, fabric = build(n=n)
        targets = list(range(1, n))
        fast = TreeBroadcast(width=width).simulate(0, targets, 4096, fabric)
        slow = scalar_tree(width=width).simulate(0, targets, 4096, fabric)
        assert fast.makespan_s == slow.makespan_s  # bit-identical, not approx
        assert fast.failed == slow.failed
        assert fast.n_timeouts == slow.n_timeouts

    @pytest.mark.parametrize("width", [2, 8, 32])
    def test_with_leaf_and_inner_failures(self, width):
        _, cluster, fabric = build(n=512)
        # id 1 roots the first subtree (inner); the rest hit leaves/mid levels.
        cluster.fail_nodes([1, 17, 100, 101, 255, 511])
        targets = list(range(1, 512))
        fast = TreeBroadcast(width=width).simulate(0, targets, 4096, fabric)
        slow = scalar_tree(width=width).simulate(0, targets, 4096, fabric)
        assert fast.makespan_s == slow.makespan_s
        assert fast.failed == slow.failed  # same *order*, not just same set
        assert fast.n_timeouts == slow.n_timeouts

    def test_with_many_failures(self):
        _, cluster, fabric = build(n=1024)
        cluster.fail_nodes(list(range(7, 1024, 7)))
        targets = list(range(1, 1024))
        fast = TreeBroadcast(width=16).simulate(0, targets, 4096, fabric)
        slow = scalar_tree(width=16).simulate(0, targets, 4096, fabric)
        assert fast.makespan_s == slow.makespan_s
        assert fast.failed == slow.failed

    def test_arrivals_match(self):
        _, cluster, fabric = build(n=256)
        cluster.fail_nodes([3, 64])
        targets = list(range(1, 256))
        fast = TreeBroadcast(width=8).simulate(0, targets, 4096, fabric, record_arrivals=True)
        slow = scalar_tree(width=8).simulate(0, targets, 4096, fabric, record_arrivals=True)
        assert fast.arrivals == slow.arrivals

    def test_per_target_root_cost(self):
        _, _, fabric = build(n=128)
        targets = list(range(1, 128))
        fast = TreeBroadcast(width=8, per_target_root_s=1e-4).simulate(0, targets, 4096, fabric)
        slow = scalar_tree(width=8, per_target_root_s=1e-4).simulate(0, targets, 4096, fabric)
        assert fast.makespan_s == slow.makespan_s

    def test_small_broadcasts_stay_scalar(self):
        _, _, fabric = build(n=64)
        engine = TreeBroadcast(width=8)
        targets = list(range(1, 32))  # below FAST_PATH_MIN_TARGETS
        res = engine.simulate(0, targets, 1024, fabric)
        ref = scalar_tree(width=8).simulate(0, targets, 1024, fabric)
        assert res.makespan_s == ref.makespan_s

    def test_jitter_forces_scalar_path(self):
        sim = Simulator(seed=7)
        cluster = ClusterSpec(n_nodes=256).build(sim)
        fabric = NetworkFabric(sim, cluster, FabricConfig(jitter_frac=0.1))
        targets = list(range(1, 256))
        # Same seeded RNG stream twice: scalar draw order both times.
        a = TreeBroadcast(width=8).simulate(0, targets, 1024, fabric)
        sim2 = Simulator(seed=7)
        cluster2 = ClusterSpec(n_nodes=256).build(sim2)
        fabric2 = NetworkFabric(sim2, cluster2, FabricConfig(jitter_frac=0.1))
        b = scalar_tree(width=8).simulate(0, targets, 1024, fabric2)
        assert a.makespan_s == b.makespan_s
