"""Tests for connection tracking."""

import pytest

from repro.errors import NetworkError
from repro.network import ConnectionTracker
from repro.simkit import Simulator


def test_open_close_counts():
    sim = Simulator()
    tr = ConnectionTracker(sim, "master")
    tr.open(5)
    assert tr.current == 5
    tr.close(2)
    assert tr.current == 3
    assert tr.total_opened == 5


def test_close_more_than_open_raises():
    tr = ConnectionTracker(Simulator(), "x")
    tr.open(1)
    with pytest.raises(NetworkError):
        tr.close(2)


def test_negative_counts_rejected():
    tr = ConnectionTracker(Simulator(), "x")
    with pytest.raises(NetworkError):
        tr.open(-1)
    with pytest.raises(NetworkError):
        tr.close(-1)


def test_pulse_closes_after_hold():
    sim = Simulator()
    tr = ConnectionTracker(sim, "master")
    tr.pulse(10, hold_s=5.0)
    assert tr.current == 10
    sim.run(until=10.0)
    assert tr.current == 0
    assert tr.peak() == 10


def test_mean_is_time_weighted():
    sim = Simulator()
    tr = ConnectionTracker(sim, "m")
    tr.open(4)  # 4 connections held for the whole [0, 10] window
    sim.run(until=10.0)
    tr.close(4)
    assert tr.mean() == pytest.approx(4.0)


def test_empty_tracker_mean_zero():
    tr = ConnectionTracker(Simulator(), "m")
    assert tr.mean() == 0.0
    assert tr.peak() == 0.0
