"""Tests for connection tracking."""

import pytest

from repro.errors import NetworkError
from repro.network import ConnectionTracker
from repro.simkit import Simulator


def test_open_close_counts():
    sim = Simulator()
    tr = ConnectionTracker(sim, "master")
    tr.open(5)
    assert tr.current == 5
    tr.close(2)
    assert tr.current == 3
    assert tr.total_opened == 5


def test_close_more_than_open_raises():
    tr = ConnectionTracker(Simulator(), "x")
    tr.open(1)
    with pytest.raises(NetworkError):
        tr.close(2)


def test_negative_counts_rejected():
    tr = ConnectionTracker(Simulator(), "x")
    with pytest.raises(NetworkError):
        tr.open(-1)
    with pytest.raises(NetworkError):
        tr.close(-1)


def test_pulse_closes_after_hold():
    sim = Simulator()
    tr = ConnectionTracker(sim, "master")
    tr.pulse(10, hold_s=5.0)
    assert tr.current == 10
    sim.run(until=10.0)
    assert tr.current == 0
    assert tr.peak() == 10


def test_mean_is_time_weighted():
    sim = Simulator()
    tr = ConnectionTracker(sim, "m")
    tr.open(4)  # 4 connections held for the whole [0, 10] window
    sim.run(until=10.0)
    tr.close(4)
    assert tr.mean() == pytest.approx(4.0)


def test_empty_tracker_mean_zero():
    tr = ConnectionTracker(Simulator(), "m")
    assert tr.mean() == 0.0
    assert tr.peak() == 0.0


class TestLazyPulseCloses:
    """Pulse closes ride a pending heap, not simulator events; every
    observable must still match the eagerly-scheduled version."""

    def test_no_simulator_events_scheduled(self):
        sim = Simulator()
        tr = ConnectionTracker(sim, "m")
        for _ in range(100):
            tr.pulse(3, 5.0)
        sim.run()
        assert sim.events_processed == 0  # the whole point of lazy closes

    def test_series_records_true_close_instants(self):
        sim = Simulator()
        tr = ConnectionTracker(sim, "m")
        tr.pulse(2, 5.0)  # closes at t=5
        # Nothing touches the tracker until much later.
        sim.run(until=100.0)
        assert tr.current == 0
        assert 5.0 in tr.series.times  # backdated to the real close time

    def test_tied_closes_apply_in_pulse_order(self):
        sim = Simulator()
        tr = ConnectionTracker(sim, "m")
        tr.pulse(1, 10.0)
        tr.pulse(4, 10.0)  # same close instant, later pulse
        sim.run(until=20.0)
        assert tr.current == 0
        # Values step 5 -> 4 -> 0 at the close instant: the first
        # pulse's count came off first.
        closes = [v for t, v in zip(tr.series.times, tr.series.values) if t == 10.0]
        assert closes == [4, 0]

    def test_closes_beyond_horizon_never_apply(self):
        sim = Simulator()
        tr = ConnectionTracker(sim, "m")
        tr.pulse(2, 1e9)
        sim.run(until=10.0)
        assert tr.current == 2  # the eager close event would not have fired

    def test_sync_drains_for_snapshots(self):
        sim = Simulator()
        tr = ConnectionTracker(sim, "m")
        tr.pulse(2, 1.0)
        sim.run(until=5.0)
        tr.sync()
        assert tr._current == 0  # drained without a read accessor
        assert tr._pending == []

    def test_peak_and_mean_see_lazy_closes(self):
        sim = Simulator()
        tr = ConnectionTracker(sim, "m")
        tr.pulse(10, 2.0)
        sim.run(until=10.0)
        assert tr.peak() == 10
        assert tr.mean() < 10  # closes were applied at t=2, not t=10
