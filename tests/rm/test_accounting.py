"""Tests for daemon resource accounting."""

import pytest

from repro.rm.accounting import DaemonAccounting
from repro.rm.profiles import RM_PROFILES
from repro.simkit import Simulator

SLURM = RM_PROFILES["slurm"]
DAY = 86_400.0


def make(profile=SLURM):
    sim = Simulator()
    return sim, DaemonAccounting(sim, profile, "test.master")


class TestCpu:
    def test_charge_accumulates(self):
        _, acct = make()
        acct.charge_cpu(1.5)
        acct.charge_cpu(0.5)
        assert acct.cpu_time_s == 2.0

    def test_negative_rejected(self):
        _, acct = make()
        with pytest.raises(ValueError):
            acct.charge_cpu(-1.0)

    def test_utilization_window(self):
        sim, acct = make()
        sim.run(until=10.0)
        acct.charge_cpu(5.0)  # 5s of work in a 10s window
        acct.sample()
        assert acct.cpu_util.last() == pytest.approx(0.5)
        sim.run(until=20.0)
        acct.sample()  # no work since: utilization drops to 0
        assert acct.cpu_util.last() == 0.0

    def test_utilization_capped_at_one(self):
        sim, acct = make()
        sim.run(until=1.0)
        acct.charge_cpu(100.0)
        acct.sample()
        assert acct.cpu_util.last() == 1.0


class TestMemory:
    def test_vmem_scales_with_nodes(self):
        _, acct = make()
        acct.set_tracked(nodes=0)
        base = acct.vmem_mb()
        acct.set_tracked(nodes=4096)
        assert acct.vmem_mb() == pytest.approx(base + SLURM.vmem_per_node_kb * 4096 / 1024)

    def test_vmem_growth_over_days(self):
        sim, acct = make()
        v0 = acct.vmem_mb()
        sim.run(until=2 * DAY)
        assert acct.vmem_mb() == pytest.approx(v0 + 2 * SLURM.vmem_growth_mb_per_day)

    def test_rss_scales_with_state(self):
        _, acct = make()
        acct.set_tracked(nodes=1000, jobs=50)
        expected = (
            SLURM.base_rss_mb
            + SLURM.rss_per_node_kb * 1000 / 1024
            + SLURM.rss_per_job_kb * 50 / 1024
        )
        assert acct.rss_mb() == pytest.approx(expected)

    def test_slurm_hits_10gb_vmem_at_4k(self):
        """Fig. 7c: Slurm needs ~10 GB of virtual memory for 4K nodes."""
        _, acct = make()
        acct.set_tracked(nodes=4096, jobs=500)
        assert 9_000 < acct.vmem_mb() + SLURM.vmem_growth_mb_per_day < 12_000

    def test_eslurm_under_2gb_vmem_at_4k(self):
        """Fig. 7c: ESLURM stays under 2 GB at the same scale."""
        _, acct = make(RM_PROFILES["eslurm"])
        acct.set_tracked(nodes=4096, jobs=500)
        assert acct.vmem_mb() < 2_400


class TestSampler:
    def test_sampler_records_series(self):
        sim, acct = make()
        acct.start_sampler(interval_s=1.0)
        sim.run(until=10.0)
        assert len(acct.vmem_series) == 10
        assert len(acct.cpu_util) == 10

    def test_sampler_idempotent(self):
        sim, acct = make()
        acct.start_sampler(1.0)
        acct.start_sampler(1.0)
        sim.run(until=5.0)
        assert len(acct.vmem_series) == 5

    def test_summary_keys(self):
        _, acct = make()
        s = acct.summary()
        assert {"cpu_time_min", "vmem_mb", "rss_mb", "sockets_mean", "sockets_peak"} <= set(s)
