"""Unit tests for the flat FSM job lifecycle (``repro.rm.lifecycle``).

The FSM is the default engine; the generator path stays selectable as
the reference.  These tests pin the phase walk, the kill/no-op edges,
malleable retiming, and the crashed-master hold — each against the
generator where the comparison is meaningful.
"""

import pytest

from repro.cluster import ClusterSpec, FailureModel
from repro.rm import CentralizedRM
from repro.rm.lifecycle import DONE, HOLD, TERM, WORK, JobLifecycle
from repro.sched import BackfillScheduler
from repro.sched.job import Job, JobState
from repro.simkit import Simulator

HOUR = 3600.0


def build(n=8, seed=0, lifecycle="fsm", malleable=False):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(
        n_nodes=n, n_satellites=2, failure_model=FailureModel.disabled()
    ).build(sim)
    scheduler = BackfillScheduler(malleable=True) if malleable else None
    rm = CentralizedRM.from_name(
        "slurm", sim, cluster, scheduler=scheduler, lifecycle=lifecycle
    )
    return sim, cluster, rm


def rigid(job_id, n_nodes=4, runtime=100.0, est=200.0, submit=1.0):
    return Job(job_id, f"j{job_id}.sh", "u", n_nodes, runtime, est, submit)


def elastic(job_id, n_nodes, min_nodes, max_nodes, runtime=100.0, est=200.0, submit=1.0):
    return Job(job_id, f"j{job_id}.sh", "u", n_nodes, runtime, est, submit,
               min_nodes=min_nodes, max_nodes=max_nodes)


class TestPhaseWalk:
    def test_rigid_job_walks_launch_work_term_done(self):
        sim, _, rm = build()
        j = rigid(1, runtime=100.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=50.0)  # mid-runtime
        lc = rm._job_procs[1]
        assert isinstance(lc, JobLifecycle)
        assert lc.phase == WORK
        assert lc.is_alive
        assert j.state is JobState.RUNNING
        sim.run(until=HOUR)
        assert lc.phase == DONE
        assert not lc.is_alive
        assert j.state is JobState.COMPLETED
        assert rm.pool.n_free == 8

    def test_snapshot_state_reports_phase_and_timer(self):
        sim, _, rm = build()
        j = rigid(1, runtime=100.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=50.0)
        state = rm._job_procs[1].snapshot_state()
        assert state["phase"] == "work"
        assert state["timer"]["label"] == "job1"
        assert state["nodes"] == list(j.allocated_nodes)

    def test_underestimate_ends_in_timeout_state(self):
        sim, _, rm = build()
        j = rigid(1, runtime=1000.0, est=300.0)
        rm.run_trace([j], until=2 * HOUR)
        assert j.state is JobState.TIMEOUT


class TestKillPath:
    def test_kill_mid_work_fails_and_releases(self):
        sim, _, rm = build()
        j = rigid(1, runtime=500.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=100.0)
        lc = rm._job_procs[1]
        lc.interrupt(cause="node failure")
        assert j.state is JobState.FAILED
        assert j.end_time == sim.now  # synchronous, same-tick
        assert lc.phase == DONE
        assert rm.pool.n_free == 8

    def test_interrupt_on_done_lifecycle_is_a_silent_noop(self):
        # The FSM mirror of the generator's late-delivery guard: by the
        # time a second same-tick kill lands, the job is gone.
        sim, _, rm = build()
        j = rigid(1, runtime=500.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=100.0)
        lc = rm._job_procs[1]
        lc.interrupt(cause="first failure")
        end = j.end_time
        lc.interrupt(cause="second failure")  # must not raise or re-release
        assert j.end_time == end
        assert j.state is JobState.FAILED
        assert rm.pool.n_free == 8

    @pytest.mark.parametrize("lifecycle", ["fsm", "generator"])
    def test_same_tick_double_failure_kills_once(self, lifecycle):
        """Two failure events at one instant hitting the same job: both
        paths must fail the job exactly once at that time — the FSM via
        its DONE no-op, the generator via the triggered-guard on the
        second (deferred) interrupt delivery."""
        sim, _, rm = build(lifecycle=lifecycle)
        j = rigid(1, n_nodes=4, runtime=500.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=100.0)
        nodes = j.allocated_nodes

        def double_blow():
            rm._on_failure_event("fail", [nodes[0]], sim.now)
            rm._on_failure_event("fail", [nodes[1]], sim.now)

        sim.call_at(150.0, double_blow)
        sim.run(until=HOUR)
        assert j.state is JobState.FAILED
        assert j.end_time == 150.0
        assert rm.pool.n_free == 8 - 2  # only the failed nodes stay out


class TestMalleableRetime:
    @pytest.mark.parametrize("lifecycle", ["fsm", "generator"])
    def test_shrink_stretches_wall_clock_work_conserving(self, lifecycle):
        sim, _, rm = build(malleable=True, lifecycle=lifecycle)
        hog = elastic(1, 8, 2, 8, runtime=1000.0, est=3000.0, submit=1.0)
        head = rigid(2, 4, runtime=3000.0, est=4000.0, submit=60.0)
        rm.run_trace([hog, head], until=6 * HOUR)
        assert hog.state is JobState.COMPLETED
        assert hog.end_time - hog.start_time > 1000.0
        assert hog.node_seconds == pytest.approx(8000.0, rel=0.1)

    def test_fsm_and_generator_retime_identically(self):
        ends = {}
        for lifecycle in ("fsm", "generator"):
            sim, _, rm = build(malleable=True, lifecycle=lifecycle)
            hog = elastic(1, 8, 2, 8, runtime=1000.0, est=3000.0, submit=1.0)
            head = rigid(2, 4, runtime=3000.0, est=4000.0, submit=60.0)
            rm.run_trace([hog, head], until=6 * HOUR)
            ends[lifecycle] = (hog.start_time, hog.end_time, head.start_time, head.end_time)
        assert ends["fsm"] == ends["generator"]


class TestMasterCrashHold:
    @pytest.mark.parametrize("lifecycle", ["fsm", "generator"])
    def test_completion_during_crash_holds_resources(self, lifecycle):
        sim, _, rm = build(lifecycle=lifecycle)
        j = rigid(1, runtime=100.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=50.0)
        work_end = j.start_time + 100.0
        # Crash the master across the completion instant.
        rm._crashed_until = work_end + 300.0
        sim.run(until=work_end + 1.0)
        assert j.state is JobState.RUNNING  # completion held
        assert rm.pool.n_free == 8 - 4
        sim.run(until=HOUR)
        assert j.state is JobState.COMPLETED
        # Released only once the daemon was back.
        assert j.end_time >= work_end + 300.0
