"""Engine-level malleability: grow/shrink through the full RM lifecycle."""

import pytest

from repro.cluster import ClusterSpec, FailureModel
from repro.rm import CentralizedRM
from repro.sched import BackfillScheduler
from repro.sched.job import Job, JobState
from repro.simkit import Simulator

HOUR = 3600.0


def build(n=8, seed=0):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(
        n_nodes=n, n_satellites=2, failure_model=FailureModel.disabled()
    ).build(sim)
    rm = CentralizedRM.from_name(
        "slurm", sim, cluster, scheduler=BackfillScheduler(malleable=True)
    )
    return sim, cluster, rm


def elastic(job_id, n_nodes, min_nodes, max_nodes, runtime=100.0, est=200.0,
            submit=1.0):
    return Job(job_id, f"j{job_id}.sh", "u", n_nodes, runtime, est, submit,
               min_nodes=min_nodes, max_nodes=max_nodes)


def rigid(job_id, n_nodes, runtime=100.0, est=200.0, submit=1.0):
    return Job(job_id, f"j{job_id}.sh", "u", n_nodes, runtime, est, submit)


class TestGrowth:
    def test_lone_elastic_job_grows_to_fill_machine(self):
        sim, _, rm = build(n=8)
        j = elastic(1, 4, 2, 8, runtime=100.0)
        rm.run_trace([j], until=HOUR)
        assert j.state is JobState.COMPLETED
        assert rm.resize_grows >= 1
        assert j.resize_count >= 1
        # Work conservation: 4 * 100 node-seconds at width 8 halves the
        # wall clock (launch/terminate broadcasts add a little slack).
        assert j.end_time - j.start_time < 75.0
        assert j.node_seconds == pytest.approx(400.0, rel=0.1)

    def test_grown_nodes_visible_in_cluster(self):
        sim, cluster, rm = build(n=8)
        j = elastic(1, 4, 2, 8, runtime=500.0, est=600.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=120.0)  # mid-flight, after the first elastic pass
        assert j.state is JobState.RUNNING
        assert len(j.allocated_nodes) == 8
        assert sum(n.running_job == 1 for n in cluster.nodes) == 8
        sim.run(until=HOUR)
        assert all(n.running_job is None for n in cluster.nodes)
        assert rm.pool.n_free == 8

    def test_rigid_job_never_resized(self):
        sim, _, rm = build(n=8)
        j = rigid(1, 4, runtime=100.0)
        rm.run_trace([j], until=HOUR)
        assert j.state is JobState.COMPLETED
        assert j.resize_count == 0
        assert rm.resize_grows == 0


class TestContraction:
    def test_running_job_donates_to_blocked_head(self):
        sim, _, rm = build(n=8)
        hog = elastic(1, 8, 2, 8, runtime=2000.0, est=3000.0, submit=1.0)
        head = rigid(2, 4, runtime=100.0, submit=60.0)
        rm.run_trace([hog, head], until=2 * HOUR)
        assert rm.resize_shrinks >= 1
        assert head.state is JobState.COMPLETED
        assert hog.state is JobState.COMPLETED
        # The head ran inside the hog's window, not after it.
        assert head.start_time < hog.end_time

    def test_shrink_stretches_wall_clock(self):
        sim, _, rm = build(n=8)
        hog = elastic(1, 8, 2, 8, runtime=1000.0, est=3000.0, submit=1.0)
        head = rigid(2, 4, runtime=3000.0, est=4000.0, submit=60.0)
        rm.run_trace([hog, head], until=6 * HOUR)
        assert hog.state is JobState.COMPLETED
        # 8000 node-seconds of work at width 4 after the shrink: the
        # wall clock stretches well past the nominal 1000 s runtime.
        assert hog.end_time - hog.start_time > 1000.0
        assert hog.node_seconds == pytest.approx(8000.0, rel=0.1)


class TestShrinkOnFailure:
    def test_malleable_job_survives_node_failure(self):
        sim, _, rm = build(n=8)
        j = elastic(1, 4, 2, 4, runtime=500.0, est=600.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=100.0)
        assert j.state is JobState.RUNNING
        victim = j.allocated_nodes[0]
        rm._on_failure_event("fail", [victim], sim.now)
        assert j.state is JobState.RUNNING
        assert len(j.allocated_nodes) == 3
        assert victim not in j.allocated_nodes
        assert rm.resize_shrinks == 1
        sim.run(until=HOUR)
        assert j.state is JobState.COMPLETED

    def test_job_at_min_width_still_killed(self):
        sim, _, rm = build(n=8)
        # A rigid neighbour fills the machine, so the elastic job stays
        # pinned at its minimum width — no node to contract around.
        neighbour = rigid(2, 6, runtime=2000.0, est=3000.0)
        j = elastic(1, 2, 2, 4, runtime=500.0, est=600.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(neighbour))
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=100.0)
        assert len(j.allocated_nodes) == 2
        rm._on_failure_event("fail", [j.allocated_nodes[0]], sim.now)
        sim.run(until=HOUR)
        assert j.state is JobState.FAILED

    def test_rigid_job_killed_as_before(self):
        sim, _, rm = build(n=8)
        j = rigid(1, 4, runtime=500.0, est=600.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=100.0)
        rm._on_failure_event("fail", [j.allocated_nodes[0]], sim.now)
        sim.run(until=HOUR)
        assert j.state is JobState.FAILED
