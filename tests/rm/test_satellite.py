"""Tests for the satellite state machine, Eq. 1, and failover."""

import pytest

from repro.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.rm.eslurm import SATELLITE_PROFILE
from repro.rm.satellite import (
    FAULT_TIMEOUT_S,
    SatelliteDaemon,
    SatelliteEvent,
    SatellitePool,
    SatelliteState,
)
from repro.simkit import Simulator


def pool(n_sats=4, n_nodes=64, seed=0):
    sim = Simulator(seed=seed)
    cluster = ClusterSpec(n_nodes=n_nodes, n_satellites=n_sats).build(sim)
    return sim, cluster, SatellitePool(sim, cluster, SATELLITE_PROFILE, width=8)


class TestStateMachine:
    def daemon(self):
        sim, cluster, _ = pool(1)
        return sim, SatelliteDaemon(sim, cluster.satellites[0], SATELLITE_PROFILE)

    def test_initial_state_unknown(self):
        _, d = self.daemon()
        assert d.state is SatelliteState.UNKNOWN

    def test_heartbeat_discovers(self):
        _, d = self.daemon()
        d.heartbeat()
        assert d.state is SatelliteState.RUNNING

    def test_bt_lifecycle(self):
        _, d = self.daemon()
        d.heartbeat()
        d.handle(SatelliteEvent.BT_START)
        assert d.state is SatelliteState.BUSY
        d.handle(SatelliteEvent.BT_SUCCESS)
        assert d.state is SatelliteState.RUNNING

    def test_bt_failure_goes_fault(self):
        _, d = self.daemon()
        d.heartbeat()
        d.handle(SatelliteEvent.BT_START)
        d.handle(SatelliteEvent.BT_FAILURE)
        assert d.state is SatelliteState.FAULT

    def test_fault_recovers_on_hb_success(self):
        _, d = self.daemon()
        d.heartbeat()
        d.handle(SatelliteEvent.HB_FAILURE)
        assert d.state is SatelliteState.FAULT
        d.heartbeat()  # node is responsive -> HB_SUCCESS
        assert d.state is SatelliteState.RUNNING

    def test_fault_times_out_to_down(self):
        sim, d = self.daemon()
        d.heartbeat()
        d.node.fail()
        d.heartbeat()
        assert d.state is SatelliteState.FAULT
        sim.run(until=FAULT_TIMEOUT_S + 1)
        d.heartbeat()
        assert d.state is SatelliteState.DOWN

    def test_down_needs_admin(self):
        sim, d = self.daemon()
        d.handle(SatelliteEvent.SHUTDOWN)
        assert d.state is SatelliteState.DOWN
        d.heartbeat()  # heartbeats do not revive DOWN satellites
        assert d.state is SatelliteState.DOWN
        d.revive()
        assert d.state is SatelliteState.UNKNOWN

    def test_shutdown_from_any_state(self):
        _, d = self.daemon()
        d.heartbeat()
        d.handle(SatelliteEvent.BT_START)
        d.handle(SatelliteEvent.SHUTDOWN)
        assert d.state is SatelliteState.DOWN


class TestEq1:
    def test_small_broadcast_one_satellite(self):
        _, _, p = pool(n_sats=4)  # width 8, m=4
        assert p.compute_n(1) == 1
        assert p.compute_n(8) == 1

    def test_medium_broadcast_scales(self):
        _, _, p = pool(n_sats=4)
        assert p.compute_n(9) == 2  # ceil(9/8)
        assert p.compute_n(24) == 3

    def test_large_broadcast_all_satellites(self):
        _, _, p = pool(n_sats=4)
        assert p.compute_n(32) == 4  # s >= m*w
        assert p.compute_n(1000) == 4

    def test_zero_targets(self):
        _, _, p = pool()
        assert p.compute_n(0) == 0


class TestSplit:
    def test_even_split(self):
        parts = SatellitePool.split(list(range(12)), 3)
        assert [len(x) for x in parts] == [4, 4, 4]
        assert sum(parts, []) == list(range(12))

    def test_uneven_split_front_loaded(self):
        parts = SatellitePool.split(list(range(10)), 3)
        assert [len(x) for x in parts] == [4, 3, 3]

    def test_more_parts_than_items(self):
        parts = SatellitePool.split([1, 2], 5)
        assert parts == [[1], [2]]


class TestFailover:
    @staticmethod
    def complete(pool_, n_nodes=4):
        """assign_task + BT_SUCCESS, as the engine does per relayed task."""
        d = pool_.assign_task(n_nodes)
        if d is not None:
            d.handle(SatelliteEvent.BT_SUCCESS)
        return d

    def test_round_robin_rotation(self):
        _, _, p = pool(n_sats=3)
        p.heartbeat_all()
        picks = [self.complete(p).node.name for _ in range(6)]
        assert picks[:3] == picks[3:6]
        assert len(set(picks[:3])) == 3

    def test_busy_satellite_not_picked(self):
        _, _, p = pool(n_sats=2)
        p.heartbeat_all()
        first = p.assign_task(4)  # stays BUSY: no BT_SUCCESS yet
        second = p.assign_task(4)
        assert first is not second

    def test_dead_satellite_skipped_via_failover(self):
        _, cluster, p = pool(n_sats=3)
        p.heartbeat_all()
        cluster.satellites[0].fail()  # dies *after* being marked RUNNING
        chosen = {self.complete(p).node.name for _ in range(4)}
        assert cluster.satellites[0].name not in chosen
        # the dead one transitioned to FAULT on its BT failure
        assert p.daemons[0].state is SatelliteState.FAULT

    def test_master_takeover_when_all_dead(self):
        _, cluster, p = pool(n_sats=2)
        p.heartbeat_all()
        for s in cluster.satellites:
            s.fail()
        assert p.assign_task(4) is None
        assert p.master_takeovers == 1

    def test_stats_accumulate(self):
        _, _, p = pool(n_sats=2)
        p.heartbeat_all()
        self.complete(p, 10)
        self.complete(p, 20)
        total = sum(d.stats.tasks_received for d in p.daemons)
        nodes = sum(d.stats.nodes_in_tasks for d in p.daemons)
        assert total == 2
        assert nodes == 30

    def test_no_satellites_rejected(self):
        sim = Simulator()
        cluster = ClusterSpec(n_nodes=8, n_satellites=0).build(sim)
        with pytest.raises(ConfigurationError):
            SatellitePool(sim, cluster, SATELLITE_PROFILE)

    def test_takeover_after_two_reallocations(self):
        """Section III: initial try + max_reallocations (2) retries, then
        the master takes over — even if a fourth satellite is healthy."""
        _, cluster, p = pool(n_sats=4)
        p.heartbeat_all()
        for s in cluster.satellites[:3]:
            s.fail()  # dead but still marked RUNNING until tried
        assert p.assign_task(4) is None
        assert p.master_takeovers == 1
        assert sum(d.stats.tasks_failed for d in p.daemons) == 1 + p.max_reallocations
        # The three tried satellites transitioned to FAULT on BT failure.
        assert [d.state for d in p.daemons[:3]] == [SatelliteState.FAULT] * 3
        assert p.daemons[3].state is SatelliteState.RUNNING

    def test_down_satellite_skipped_without_burning_retry(self):
        """A DOWN satellite is invisible to the rotation: it is never
        tried, so it consumes no reallocation attempts."""
        _, cluster, p = pool(n_sats=3)
        p.heartbeat_all()
        p.daemons[0].handle(SatelliteEvent.SHUTDOWN)
        picks = [self.complete(p).node.name for _ in range(6)]
        assert cluster.satellites[0].name not in picks
        assert len(set(picks)) == 2  # the two live ones alternate
        assert p.master_takeovers == 0
        assert sum(d.stats.tasks_failed for d in p.daemons) == 0
        assert p.daemons[0].stats.tasks_received == 0
