"""FSM vs generator lifecycle: per-job equivalence across the scenario matrix.

The flat table-driven lifecycle (``lifecycle="fsm"``) must be
observably indistinguishable from the generator reference on the same
seeded trace — per job (state, start, end), per daemon (CPU charged,
crash count), per resize counter — across {rigid, malleable} x
{clean, node-failure, master-crash}.  The deterministic matrix pins
every combination; the hypothesis sweep then varies the seed so the
equivalence is a property, not an anecdote.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.failures import FailureModel
from repro.cluster.spec import ClusterSpec
from repro.rm.eslurm import EslurmRM
from repro.rm.profiles import ESLURM
from repro.sched.backfill import BackfillScheduler
from repro.simkit import Simulator
from repro.workload.synthetic import WorkloadConfig, generate_trace

DAY = 86_400.0
N_NODES = 128
N_JOBS = 25

SCENARIOS = ("clean", "node-failure", "master-crash")

#: ~3 master crashes over the day on a 128-node machine (mtbf = 8 h)
_CRASHY = dataclasses.replace(ESLURM, crash_node_hours=8.0 * N_NODES, reboot_minutes=10.0)


def _fingerprint(lifecycle: str, seed: int, malleable: bool, scenario: str):
    """Every observable of one full day, as a comparable value."""
    sim = Simulator(seed=seed)
    model = (
        FailureModel(mtbf_node_hours=1200.0, burst_per_day=1.5)
        if scenario == "node-failure"
        else FailureModel.disabled()
    )
    cluster = ClusterSpec(
        n_nodes=N_NODES, n_satellites=2, failure_model=model, name="lc-eq"
    ).build(sim)
    if scenario == "node-failure":
        cluster.failures.start()
        cluster.monitor.start()
    kwargs = {"scheduler": BackfillScheduler(malleable=True)} if malleable else {}
    if scenario == "master-crash":
        kwargs["profile"] = _CRASHY
    rm = EslurmRM(sim, cluster, lifecycle=lifecycle, **kwargs)
    jobs = generate_trace(
        WorkloadConfig(max_nodes=N_NODES // 4, malleable_fraction=0.5 if malleable else 0.0),
        N_JOBS,
        seed=seed,
    )
    rm.run_trace(jobs, until=DAY)
    return {
        "jobs": [
            (j.job_id, j.state.name, j.submit_time, j.start_time, j.end_time, j.n_nodes)
            for j in rm.jobs
        ],
        "master_cpu_s": rm.master_acct.cpu_time_s,
        "crashes": rm.crash_count,
        "grows": rm.resize_grows,
        "shrinks": rm.resize_shrinks,
        "free": rm.pool.n_free,
        "now": sim.now,
    }


class TestScenarioMatrix:
    """Deterministic coverage of every (shape, scenario) combination."""

    @pytest.mark.parametrize("malleable", [False, True], ids=["rigid", "malleable"])
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_fsm_matches_generator(self, malleable, scenario):
        fsm = _fingerprint("fsm", 3, malleable, scenario)
        gen = _fingerprint("generator", 3, malleable, scenario)
        assert fsm == gen

    def test_crashy_profile_actually_crashes(self):
        # The master-crash column must exercise the reboot path, or the
        # matrix silently degenerates to a second clean column.
        assert _fingerprint("fsm", 3, False, "master-crash")["crashes"] > 0

    def test_failure_scenario_actually_kills_nodes(self):
        # The injector must change what the day looks like, or the
        # node-failure column is a second clean column in disguise.
        assert _fingerprint("fsm", 3, False, "node-failure") != _fingerprint(
            "fsm", 3, False, "clean"
        )


class TestSeedSweep:
    """The same equivalence as a seed-indexed property."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        seed=st.integers(min_value=0, max_value=63),
        malleable=st.booleans(),
        scenario=st.sampled_from(SCENARIOS),
    )
    def test_fsm_matches_generator_any_seed(self, seed, malleable, scenario):
        fsm = _fingerprint("fsm", seed, malleable, scenario)
        gen = _fingerprint("generator", seed, malleable, scenario)
        assert fsm == gen
