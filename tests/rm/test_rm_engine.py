"""Integration tests for the RM engines (centralized + ESLURM)."""

import pytest

from repro.cluster import ClusterSpec, FailureModel
from repro.errors import ConfigurationError, SchedulingError
from repro.rm import CentralizedRM, EslurmRM, RM_PROFILES
from repro.sched.job import Job, JobState
from repro.simkit import Simulator

HOUR = 3600.0


def build(rm_name="slurm", n=64, sats=2, seed=0, failures=False, **kw):
    sim = Simulator(seed=seed)
    model = FailureModel() if failures else FailureModel.disabled()
    cluster = ClusterSpec(n_nodes=n, n_satellites=sats, failure_model=model).build(sim)
    if failures:
        cluster.failures.start()
    if rm_name == "eslurm":
        rm = EslurmRM(sim, cluster, **kw)
    else:
        rm = CentralizedRM.from_name(rm_name, sim, cluster, **kw)
    return sim, cluster, rm


def job(job_id, n_nodes=4, runtime=100.0, est=200.0, submit=1.0):
    return Job(job_id, f"j{job_id}.sh", "u", n_nodes, runtime, est, submit)


class TestLifecycle:
    def test_single_job_completes(self):
        sim, cluster, rm = build()
        j = job(1)
        rm.run_trace([j], until=2 * HOUR)
        assert j.state is JobState.COMPLETED
        assert j.start_time is not None
        assert j.end_time > j.start_time
        assert rm.pool.n_free == 64

    def test_underestimated_job_times_out(self):
        sim, _, rm = build()
        j = job(1, runtime=1000.0, est=300.0)
        rm.run_trace([j], until=2 * HOUR)
        assert j.state is JobState.TIMEOUT
        # killed at the wall limit, not at the true runtime
        assert j.end_time - j.start_time < 500.0

    def test_nodes_allocated_and_released_in_cluster(self):
        sim, cluster, rm = build()
        j = job(1, n_nodes=8)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=30.0)  # mid-flight
        assert sum(n.running_job == 1 for n in cluster.nodes) == 8
        sim.run(until=HOUR)
        assert all(n.running_job is None for n in cluster.nodes)

    def test_too_large_job_rejected(self):
        sim, _, rm = build(n=16)
        rm.start()
        with pytest.raises(SchedulingError):
            rm.submit(job(1, n_nodes=100))

    def test_queueing_when_machine_full(self):
        sim, _, rm = build(n=8)
        j1, j2 = job(1, n_nodes=8, runtime=100.0), job(2, n_nodes=8, runtime=100.0, submit=2.0)
        rm.run_trace([j1, j2], until=HOUR)
        assert j1.state is JobState.COMPLETED
        assert j2.state is JobState.COMPLETED
        assert j2.start_time >= j1.end_time  # had to wait for release

    def test_occupation_time_recorded(self):
        sim, _, rm = build()
        rm.run_trace([job(1, runtime=50.0)], until=HOUR)
        rep = rm.report(horizon_s=HOUR)
        assert rep.occupation_mean_s > 50.0
        assert rep.n_broadcasts == 2  # launch + terminate

    def test_past_submit_rejected(self):
        sim, _, rm = build()
        sim.run(until=100.0)
        with pytest.raises(SchedulingError):
            rm.run_trace([job(1, submit=1.0)])


class TestAccountingDuringRun:
    def test_master_charged_for_everything(self):
        sim, _, rm = build()
        rm.run_trace([job(i, submit=float(i)) for i in range(1, 11)], until=2 * HOUR)
        assert rm.master_acct.cpu_time_s > 0
        assert rm.master_acct.sockets.total_opened > 0

    def test_heartbeats_cost_cpu_even_when_idle(self):
        sim, _, rm = build()
        rm.start()
        sim.run(until=HOUR)
        assert rm.master_acct.cpu_time_s > 0

    def test_persistent_sockets_for_sge(self):
        sim, _, rm = build("sge", n=64)
        rm.start()
        sim.run(until=60.0)
        assert rm.master_acct.sockets.current >= 64  # one per node

    def test_report_summary_renders(self):
        sim, _, rm = build()
        rm.run_trace([job(1)], until=HOUR)
        text = rm.report(horizon_s=HOUR).summary()
        assert "master:" in text and "utilization" in text


class TestFailureHandling:
    def test_node_failure_kills_running_job(self):
        sim, cluster, rm = build()
        j = job(1, n_nodes=4, runtime=10_000.0)
        rm.start()
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=100.0)
        assert j.state is JobState.RUNNING
        victim = j.allocated_nodes[0]
        cluster.fail_nodes([victim])
        rm._on_failure_event("point", [victim], sim.now)
        sim.run(until=200.0)
        assert j.state is JobState.FAILED
        assert j.job_id not in rm.pool.running

    def test_failed_node_not_reallocated_until_recovery(self):
        sim, cluster, rm = build(n=8)
        cluster.fail_nodes([0, 1])
        rm.start()
        rm._on_failure_event("point", [0, 1], sim.now)
        j = job(1, n_nodes=8, runtime=10.0)
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=100.0)
        assert j.state is JobState.PENDING  # only 6 nodes available
        cluster.recover_nodes([0, 1])
        rm._on_failure_event("recover", [0, 1], sim.now)
        sim.run(until=HOUR)
        assert j.state is JobState.COMPLETED


class TestEslurm:
    def test_broadcasts_go_via_satellites(self):
        sim, cluster, rm = build("eslurm", n=64, sats=2)
        rm.run_trace([job(1, n_nodes=32)], until=HOUR)
        tasks = sum(d.stats.tasks_received for d in rm.sat_pool.daemons)
        assert tasks >= 2  # launch + terminate, at least
        assert rm.report(HOUR).satellites  # satellite summaries present

    def test_master_sockets_bounded_by_satellites(self):
        sim, cluster, rm = build("eslurm", n=256, sats=4)
        rm.run_trace([job(i, n_nodes=64, submit=float(i)) for i in range(1, 6)], until=HOUR)
        assert rm.master_acct.sockets.peak() <= 10  # talks to <= 4 sats + users

    def test_satellite_death_failover_keeps_jobs_running(self):
        sim, cluster, rm = build("eslurm", n=64, sats=2)
        rm.start()
        cluster.satellites[0].fail()
        j = job(1, n_nodes=32, runtime=50.0)
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=HOUR)
        assert j.state is JobState.COMPLETED

    def test_all_satellites_dead_master_takes_over(self):
        sim, cluster, rm = build("eslurm", n=64, sats=2)
        rm.start()
        for s in cluster.satellites:
            s.fail()
        j = job(1, n_nodes=32, runtime=50.0)
        sim.call_at(1.0, lambda: rm.submit(j))
        sim.run(until=HOUR)
        assert j.state is JobState.COMPLETED
        assert rm.sat_pool.master_takeovers > 0

    def test_auto_estimator_sets_limits(self):
        sim, cluster, rm = build("eslurm", n=64, sats=2, estimator="auto")
        jobs = [
            Job(i, "repeat.sh", "u", 2, 100.0, 5000.0, submit_time=float(i * 200))
            for i in range(1, 60)
        ]
        rm.run_trace(jobs, until=6 * HOUR)
        # once trained, planned runtimes should drop far below the 5000s
        # user ask — while the kill limit stays the user's request
        late = [j for j in jobs if j.job_id > 45 and j.state is JobState.COMPLETED]
        assert late
        assert any(j.planned_s < 1000.0 for j in late)
        assert all(j.limit_s == 5000.0 for j in late)

    def test_fptree_ablation_flag(self):
        sim, cluster, rm = build("eslurm", n=64, sats=2, use_fptree=False)
        rm.run_trace([job(1, n_nodes=32)], until=HOUR)
        assert rm.fptree_stats.predicted_total == 0

    def test_heartbeat_cache_reused_until_liveness_changes(self):
        sim, cluster, rm = build("eslurm", n=128, sats=2)
        rm.start()
        sim.run(until=300.0)
        key_before = rm._hb_cache_key
        sim.run(until=600.0)
        assert rm._hb_cache_key == key_before  # nothing changed
        cluster.fail_nodes([5])
        sim.run(until=700.0)
        assert rm._hb_cache_key != key_before


class TestCentralizedFactory:
    def test_unknown_name_rejected(self):
        sim = Simulator()
        cluster = ClusterSpec(n_nodes=4).build(sim)
        with pytest.raises(ConfigurationError):
            CentralizedRM.from_name("pbspro", sim, cluster)

    def test_eslurm_name_rejected(self):
        sim = Simulator()
        cluster = ClusterSpec(n_nodes=4).build(sim)
        with pytest.raises(ConfigurationError):
            CentralizedRM.from_name("eslurm", sim, cluster)

    def test_all_centralized_profiles_run(self):
        for name in ("slurm", "lsf", "sge", "torque", "openpbs"):
            sim, _, rm = build(name, n=32)
            rm.run_trace([job(1, n_nodes=4, runtime=20.0)], until=HOUR)
            assert rm.jobs[0].state is JobState.COMPLETED
