"""Tests for the RM cost profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.rm.profiles import RM_PROFILES, HeartbeatStyle, LaunchStructure, RMProfile


class TestRegistry:
    def test_all_six_rms_present(self):
        assert set(RM_PROFILES) == {"slurm", "lsf", "sge", "torque", "openpbs", "eslurm"}

    def test_names_match_keys(self):
        for key, profile in RM_PROFILES.items():
            assert profile.name == key


class TestCalibrationInvariants:
    """Orderings Fig. 7 depends on, pinned as tests."""

    def test_eslurm_lowest_rpc_cost(self):
        eslurm = RM_PROFILES["eslurm"].rpc_cpu_us
        assert all(p.rpc_cpu_us >= eslurm for p in RM_PROFILES.values())

    def test_slurm_largest_per_node_memory(self):
        slurm = RM_PROFILES["slurm"].vmem_per_node_kb
        assert all(p.vmem_per_node_kb <= slurm for p in RM_PROFILES.values())

    def test_eslurm_lowest_rss(self):
        eslurm = RM_PROFILES["eslurm"]
        assert all(
            p.base_rss_mb >= eslurm.base_rss_mb and p.rss_per_node_kb >= eslurm.rss_per_node_kb
            for p in RM_PROFILES.values()
        )

    def test_sge_openpbs_keep_standing_connections(self):
        assert RM_PROFILES["sge"].persistent_socket_frac >= 0.8
        assert RM_PROFILES["openpbs"].persistent_socket_frac >= 0.5
        assert RM_PROFILES["slurm"].persistent_socket_frac == 0.0
        assert RM_PROFILES["eslurm"].persistent_socket_frac == 0.0

    def test_pbs_family_launches_serially(self):
        for name in ("sge", "torque", "openpbs"):
            assert RM_PROFILES[name].launch_structure is LaunchStructure.SERIAL

    def test_eslurm_heartbeat_via_satellites(self):
        assert RM_PROFILES["eslurm"].heartbeat_style is HeartbeatStyle.SATELLITE

    def test_only_eslurm_avoids_master_bursts(self):
        assert RM_PROFILES["eslurm"].burst_socket_frac == 0.0
        assert RM_PROFILES["slurm"].burst_socket_frac > 0.2


class TestValidation:
    def test_invalid_values_rejected(self):
        base = RM_PROFILES["slurm"]
        with pytest.raises(ConfigurationError):
            base.with_overrides(rpc_cpu_us=-1)
        with pytest.raises(ConfigurationError):
            base.with_overrides(persistent_socket_frac=2.0)
        with pytest.raises(ConfigurationError):
            base.with_overrides(tree_width=1)
        with pytest.raises(ConfigurationError):
            base.with_overrides(heartbeat_interval_s=0)

    def test_with_overrides_copies(self):
        slurm = RM_PROFILES["slurm"]
        fast = slurm.with_overrides(rpc_cpu_us=1.0)
        assert fast.rpc_cpu_us == 1.0
        assert slurm.rpc_cpu_us != 1.0
