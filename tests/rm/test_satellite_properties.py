"""Property-based tests: the satellite state machine under arbitrary
event sequences.

Table II is the entire specification: whatever interleaving of
broadcast events, heartbeats, node failures, and clock advances occurs,
every transition the daemon takes must be the one the table dictates,
and a FAULT left unattended past the 20-minute timeout must escalate to
DOWN on the next heartbeat.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.rm.eslurm import SATELLITE_PROFILE
from repro.rm.satellite import (
    FAULT_TIMEOUT_S,
    _TRANSITIONS,
    SatelliteDaemon,
    SatelliteEvent,
    SatelliteState,
)
from repro.simkit import Simulator

#: one scripted action against the daemon or its node
op_strategy = st.one_of(
    st.tuples(st.just("advance"), st.floats(1.0, 1500.0)),
    st.tuples(st.just("fail"), st.none()),
    st.tuples(st.just("recover"), st.none()),
    st.tuples(st.just("heartbeat"), st.none()),
    st.tuples(st.just("event"), st.sampled_from(list(SatelliteEvent))),
)


def expected_next(old, event):
    if event is SatelliteEvent.SHUTDOWN:
        return SatelliteState.DOWN
    return _TRANSITIONS.get((old, event), old)


def run_ops(ops):
    """Execute a scripted op sequence; returns (sim, daemon, trace)."""
    sim = Simulator(seed=0)
    cluster = ClusterSpec(n_nodes=8, n_satellites=1).build(sim)
    daemon = SatelliteDaemon(sim, cluster.satellites[0], SATELLITE_PROFILE)
    trace = []
    daemon.transition_observers.append(
        lambda d, old, event, new: trace.append((old, event, new))
    )
    now = 0.0
    for op, arg in ops:
        if op == "advance":
            now += arg
            sim.run(until=now)
        elif op == "fail":
            daemon.node.fail()
        elif op == "recover":
            daemon.node.recover()
        elif op == "heartbeat":
            daemon.heartbeat()
        else:
            daemon.handle(arg)
    return sim, daemon, trace


class TestStateMachineProperties:
    @given(st.lists(op_strategy, max_size=50))
    @settings(max_examples=120, deadline=None)
    def test_every_transition_matches_table_ii(self, ops):
        _, _, trace = run_ops(ops)
        for old, event, new in trace:
            assert new is expected_next(old, event), (old, event, new)

    @given(st.lists(op_strategy, max_size=50))
    @settings(max_examples=120, deadline=None)
    def test_fault_since_tracks_fault_state(self, ops):
        sim, daemon, trace = run_ops(ops)
        # fault_since is set exactly while in FAULT — it is what the
        # timeout escalation and the chaos scan invariant read.
        assert (daemon.state is SatelliteState.FAULT) == (
            daemon.fault_since is not None
        )
        if daemon.fault_since is not None:
            assert 0.0 <= daemon.fault_since <= sim.now

    @given(st.lists(op_strategy, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_down_only_via_shutdown_or_timeout(self, ops):
        _, _, trace = run_ops(ops)
        for old, event, new in trace:
            if new is SatelliteState.DOWN and old is not SatelliteState.DOWN:
                assert event in (SatelliteEvent.SHUTDOWN, SatelliteEvent.TIMEOUT)
                if event is SatelliteEvent.TIMEOUT:
                    assert old is SatelliteState.FAULT

    @given(st.lists(op_strategy, max_size=30), st.floats(1.0, 3600.0))
    @settings(max_examples=80, deadline=None)
    def test_stale_fault_escalates_on_next_heartbeat(self, ops, extra):
        """However the daemon got into FAULT, a dead node plus a
        heartbeat after the 20-minute timeout must land in DOWN."""
        sim, daemon, _ = run_ops(ops)
        if daemon.state is not SatelliteState.FAULT:
            return
        daemon.node.fail()
        sim.run(until=sim.now + FAULT_TIMEOUT_S + extra)
        daemon.heartbeat()
        assert daemon.state is SatelliteState.DOWN

    @given(st.lists(op_strategy, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_heartbeat_never_escalates_fresh_fault(self, ops):
        """A FAULT younger than the timeout survives heartbeats (the
        20-minute grace of Table II is honored, not short-circuited)."""
        sim, daemon, _ = run_ops(ops)
        if daemon.state is not SatelliteState.FAULT:
            return
        start = daemon.fault_since
        if sim.now >= start + FAULT_TIMEOUT_S - 1.0:
            return  # ops already aged the fault past the window
        daemon.node.fail()
        sim.run(until=start + FAULT_TIMEOUT_S - 1.0)
        daemon.heartbeat()
        assert daemon.state is SatelliteState.FAULT
