"""Golden-trace layer: determinism, regression pinning, tamper detection."""

import json
import shutil
from pathlib import Path

import pytest

from repro.oracle.golden import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_SCENARIOS,
    GoldenScenario,
    TraceDigest,
    check_golden,
    dump_canonical,
    golden_path,
    load_golden,
    write_golden,
)

pytestmark = pytest.mark.golden

SMALL = GoldenScenario(name="tiny", rm="eslurm", n_nodes=32, n_satellites=1, seed=3, n_jobs=40)


class TestTraceDigest:
    def test_digest_depends_on_every_field(self):
        base = TraceDigest()
        base.hook(1.0, 0, 0)
        for triple in ((2.0, 0, 0), (1.0, 1, 0), (1.0, 0, 1)):
            other = TraceDigest()
            other.hook(*triple)
            assert other.hexdigest() != base.hexdigest()

    def test_digest_tracks_stream_length_and_clock(self):
        digest = TraceDigest()
        digest.hook(1.0, 0, 0)
        digest.hook(5.0, 0, 1)
        assert digest.events == 2
        assert digest.last_time == 5.0

    def test_simulator_hook_seam_feeds_the_digest(self):
        from repro.simkit.core import Simulator

        sim = Simulator(seed=0)
        digest = TraceDigest()
        sim.add_trace_hook(digest.hook)
        for delay in (1.0, 2.0, 3.0):
            sim.timeout(delay)
        sim.run()
        assert digest.events == 3 and digest.last_time == 3.0
        sim.remove_trace_hook(digest.hook)
        sim.timeout(1.0)
        sim.run()
        assert digest.events == 3  # detached hooks see nothing


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        assert dump_canonical(SMALL.record()) == dump_canonical(SMALL.record())

    def test_different_seed_different_digest(self):
        import dataclasses

        other = dataclasses.replace(SMALL, seed=SMALL.seed + 1)
        assert SMALL.record()["trace"]["digest"] != other.record()["trace"]["digest"]

    def test_frozen_files_are_canonical_bytes(self):
        # The files in tests/golden/ must be exactly what dump_canonical
        # produces — hand edits or non-canonical rewrites are findings.
        for scenario in GOLDEN_SCENARIOS:
            path = golden_path(DEFAULT_GOLDEN_DIR, scenario.name)
            payload = json.loads(path.read_text())
            assert path.read_text() == dump_canonical(payload)


class TestRegression:
    def test_current_tree_matches_frozen_traces(self):
        results = check_golden()
        assert results, "no golden results produced"
        failed = [r.line() for r in results if not r.ok]
        assert not failed, "\n".join(failed)

    def test_every_scenario_has_a_frozen_file(self):
        frozen = load_golden()
        assert {s.name for s in GOLDEN_SCENARIOS} <= set(frozen)


class TestTamperDetection:
    @pytest.fixture()
    def golden_copy(self, tmp_path):
        dst = tmp_path / "golden"
        shutil.copytree(DEFAULT_GOLDEN_DIR, dst)
        return dst

    def test_tampered_digest_is_flagged(self, golden_copy):
        path = golden_path(golden_copy, "eslurm-base")
        payload = json.loads(path.read_text())
        payload["trace"]["digest"] = "sha256:" + "0" * 64
        path.write_text(dump_canonical(payload))
        results = check_golden(golden_copy)
        bad = {r.relation for r in results if not r.ok}
        assert bad == {"golden-digest/eslurm-base"}

    def test_tampered_metric_is_flagged(self, golden_copy):
        path = golden_path(golden_copy, "slurm-base")
        payload = json.loads(path.read_text())
        payload["metrics"]["schedule"]["utilization"] += 0.5
        path.write_text(dump_canonical(payload))
        bad = {r.relation for r in check_golden(golden_copy) if not r.ok}
        assert bad == {"golden-metrics/slurm-base"}

    def test_missing_file_points_at_update_golden(self, golden_copy):
        golden_path(golden_copy, "eslurm-failures").unlink()
        [missing] = [r for r in check_golden(golden_copy) if not r.ok]
        assert missing.relation == "golden-digest/eslurm-failures"
        assert "--update-golden" in missing.detail


class TestUpdateWorkflow:
    def test_write_then_check_roundtrips(self, tmp_path):
        scenarios = [SMALL]
        paths = write_golden(tmp_path, scenarios)
        assert [p.name for p in paths] == ["GOLDEN_tiny.json"]
        results = check_golden(tmp_path, scenarios)
        assert all(r.ok for r in results)

    def test_rewrite_is_idempotent(self, tmp_path):
        first = write_golden(tmp_path, [SMALL])[0].read_text()
        second = write_golden(tmp_path, [SMALL])[0].read_text()
        assert first == second
