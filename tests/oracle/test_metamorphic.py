"""Metamorphic relations and the replay kernel underneath them."""

import pytest

from repro.oracle.metamorphic import (
    METAMORPHIC_RELATIONS,
    CapacityMonotonicityRelation,
    JitterStabilityRelation,
    JobSpec,
    RackRelabelScoreRelation,
    RelabelInvarianceRelation,
    RuntimeScalingRelation,
    SeedSensitivityRelation,
    ShrinkChaosInvariantsRelation,
    ShrinkGrowRoundTripRelation,
    replay,
    specs_from_trace,
)
from repro.sched.fcfs import FcfsScheduler
from repro.workload.synthetic import WorkloadConfig, generate_trace


def _spec(job_id, n_nodes=1, runtime=10.0, submit=0.0, estimate=20.0):
    return JobSpec(
        job_id=job_id,
        name=f"job{job_id}",
        user="u",
        n_nodes=n_nodes,
        runtime_s=runtime,
        user_estimate_s=estimate,
        submit_time=submit,
    )


class TestReplayKernel:
    def test_serial_machine_runs_jobs_back_to_back(self):
        specs = [_spec(1, submit=0.0), _spec(2, submit=1.0)]
        result = replay(specs, n_nodes=1)
        assert result.spans[1] == (0.0, 10.0)
        assert result.spans[2] == (10.0, 20.0)
        assert result.makespan == 20.0

    def test_parallel_machine_runs_jobs_concurrently(self):
        result = replay([_spec(1), _spec(2)], n_nodes=2)
        assert result.spans[1][0] == result.spans[2][0] == 0.0
        assert result.makespan == 10.0

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError, match="wants 4"):
            replay([_spec(1, n_nodes=4)], n_nodes=2)

    def test_wall_limit_truncates_runtime(self):
        result = replay([_spec(1, runtime=100.0, estimate=10.0)], n_nodes=1)
        assert result.spans[1] == (0.0, 10.0)

    def test_replay_uses_production_scheduler_objects(self):
        specs = specs_from_trace(
            generate_trace(WorkloadConfig(max_nodes=8, name="t"), 30, seed=5)
        )
        backfill = replay(specs, n_nodes=16)
        fcfs = replay(specs, 16, FcfsScheduler())
        assert len(backfill.decisions) == len(fcfs.decisions) == len(specs)
        # FCFS starts strictly in arrival order; the trace arrives sorted.
        assert fcfs.start_order() == [s.job_id for s in specs]


class TestRelationsHold:
    def test_relabel_invariance(self, oracle_seed):
        result = RelabelInvarianceRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_jitter_stability(self, oracle_seed):
        result = JitterStabilityRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_runtime_scaling(self, oracle_seed):
        result = RuntimeScalingRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_capacity_monotonicity(self, oracle_seed):
        result = CapacityMonotonicityRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_seed_sensitivity(self, oracle_seed):
        result = SeedSensitivityRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_shrink_grow_roundtrip(self, oracle_seed):
        result = ShrinkGrowRoundTripRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_rack_relabel_score(self, oracle_seed):
        result = RackRelabelScoreRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_shrink_chaos_invariants(self):
        result = ShrinkChaosInvariantsRelation().run(seed=0)
        assert result.ok, result.detail
        assert "shrink" in result.detail

    def test_registry_has_all_eight(self):
        assert {type(r) for r in METAMORPHIC_RELATIONS} == {
            RelabelInvarianceRelation,
            JitterStabilityRelation,
            RuntimeScalingRelation,
            CapacityMonotonicityRelation,
            SeedSensitivityRelation,
            ShrinkGrowRoundTripRelation,
            RackRelabelScoreRelation,
            ShrinkChaosInvariantsRelation,
        }


class TestPerturbationsAreCaught:
    def test_id_dependent_scheduler_fails_relabeling(self, monkeypatch):
        # Simulate a scheduler whose decisions depend on the job-ID range:
        # the relabeled replay sees a one-node-smaller machine.
        import repro.oracle.metamorphic as meta

        real = meta.replay

        def biased(specs, n_nodes, scheduler=None):
            if any(s.job_id >= meta.RELABEL_OFFSET for s in specs):
                n_nodes -= 1
            return real(specs, n_nodes, scheduler)

        monkeypatch.setattr(meta, "replay", biased)
        assert not RelabelInvarianceRelation().run(seed=0).ok

    def test_lost_job_fails_scaling(self, monkeypatch):
        # The transformed replay silently drops a job — the schedule shape
        # no longer matches and the relation must reject it.
        import repro.oracle.metamorphic as meta

        real = meta.replay
        calls = {"n": 0}

        def lossy(specs, n_nodes, scheduler=None):
            calls["n"] += 1
            return real(specs[:-1] if calls["n"] == 2 else specs, n_nodes, scheduler)

        monkeypatch.setattr(meta, "replay", lossy)
        assert not RuntimeScalingRelation().run(seed=0).ok

    def test_changed_start_order_fails_jitter_stability(self, monkeypatch):
        # The jittered replay reverses its decision log — stable order is
        # exactly what the relation asserts, so it must reject this.
        import repro.oracle.metamorphic as meta

        real = meta.replay
        calls = {"n": 0}

        def reordered(specs, n_nodes, scheduler=None):
            calls["n"] += 1
            result = real(specs, n_nodes, scheduler)
            if calls["n"] == 2:
                result.decisions = list(reversed(result.decisions))
            return result

        monkeypatch.setattr(meta, "replay", reordered)
        assert not JitterStabilityRelation().run(seed=0).ok

    def test_leaky_grow_fails_roundtrip(self, monkeypatch):
        # A pool whose grow hands back one node too few leaks capacity;
        # the round-trip must spot the divergence, not paper over it.
        from repro.sched.allocator import NodePool

        real = NodePool.grow_allocation

        def leaky(self, job_id, k):
            grown = real(self, job_id, max(k - 1, 0))
            return grown

        monkeypatch.setattr(NodePool, "grow_allocation", leaky)
        result = ShrinkGrowRoundTripRelation().run(seed=0)
        assert not result.ok

    def test_offset_relabel_breaks_score_invariance(self, monkeypatch):
        # A relabelling that shifts nodes by half a rack is NOT a rack
        # permutation — the relation's sensitivity check: feeding it a
        # non-structure-preserving map must fail.
        import repro.oracle.metamorphic as meta

        real = meta.placement_score
        calls = {"n": 0}

        def skewed(nodes, topo):
            calls["n"] += 1
            # every second call sees a shifted node set
            if calls["n"] % 2 == 0:
                nodes = tuple(v + topo.nodes_per_board for v in nodes)
                return real(nodes, topo) + 0.5
            return real(nodes, topo)

        monkeypatch.setattr(meta, "placement_score", skewed)
        assert not RackRelabelScoreRelation().run(seed=0).ok
