"""``repro verify`` / ``repro bench check``: wiring and exit codes.

Every checking verb must exit 0 on a healthy tree and nonzero the
moment any relation fails — these tests drive the real CLI entry point
in-process.
"""

import json
import shutil

import pytest

from repro.cli import main
from repro.oracle.golden import DEFAULT_GOLDEN_DIR, dump_canonical, golden_path
from repro.oracle.verify import LAYERS, VerifyReport, run_verify
from repro.oracle.relations import RelationResult


def _ok(name="r", layer="differential"):
    return RelationResult(name, True, "fine", layer=layer)


def _fail(name="r", layer="differential"):
    return RelationResult(name, False, "broke", layer=layer)


class TestVerifyReport:
    def test_ok_and_counts(self):
        report = VerifyReport(seed=0, results=[_ok(), _fail(), _fail()])
        assert not report.ok and report.n_failed == 2
        assert "FAIL" in report.to_text()
        assert VerifyReport(seed=0, results=[_ok()]).ok

    def test_payload_shape(self):
        payload = VerifyReport(seed=5, results=[_ok("x")]).to_payload()
        assert payload["seed"] == 5 and payload["ok"] is True
        assert payload["results"][0]["relation"] == "x"

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown verify layers"):
            run_verify(layers=("differential", "nope"))

    def test_layer_selection_runs_only_that_layer(self):
        report = run_verify(seed=0, layers=("metamorphic",))
        assert report.results and {r.layer for r in report.results} == {"metamorphic"}


class TestVerifyCli:
    def test_metamorphic_layer_exits_zero(self, capsys):
        assert main(["verify", "--layer", "metamorphic", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "verify: OK" in out and "relabel-invariance" in out

    def test_bare_flags_imply_run(self, capsys):
        # `repro verify --seed 42 --layer metamorphic` — no subcommand word.
        assert main(["verify", "--seed", "42", "--layer", "metamorphic"]) == 0
        assert "verify: OK" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(["verify", "--layer", "metamorphic", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["n_failed"] == 0

    def test_list_enumerates_relations_and_scenarios(self, capsys):
        assert main(["verify", "list"]) == 0
        out = capsys.readouterr().out
        for needle in ("master-offload", "capacity-monotonicity", "golden/eslurm-base"):
            assert needle in out

    def test_golden_layer_against_frozen_tree(self, capsys):
        assert main(["verify", "--layer", "golden"]) == 0
        assert "verify: OK" in capsys.readouterr().out


class TestRelationFilter:
    def test_run_verify_filters_by_name(self):
        report = run_verify(seed=0, relations=["rack-relabel-score"])
        assert [r.relation for r in report.results] == ["rack-relabel-score"]
        assert report.ok

    def test_filter_spans_both_layers(self):
        report = run_verify(
            seed=0, relations=["rack-relabel-score", "shrink-grow-roundtrip"]
        )
        assert {r.relation for r in report.results} == {
            "rack-relabel-score", "shrink-grow-roundtrip",
        }

    def test_filter_drops_golden_layer(self):
        # Golden checks are frozen scenarios, not named relations — a
        # filter silently skipping them beats failing on every run.
        report = run_verify(seed=0, relations=["rack-relabel-score"])
        assert all(r.layer != "golden" for r in report.results)

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError, match="unknown relations"):
            run_verify(seed=0, relations=["no-such-relation"])

    def test_cli_relation_flag(self, capsys):
        rc = main(["verify", "--relation", "rack-relabel-score", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rack-relabel-score" in out and "1/1 relations held" in out

    def test_cli_unknown_relation_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["verify", "--relation", "no-such-thing"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "no-such-thing" in err and "malleable-throughput" in err

    def test_cli_relation_conflicts_with_update_golden(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["verify", "--relation", "rack-relabel-score", "--update-golden"])
        assert exc.value.code == 2


class TestVerifyExitCodes:
    @pytest.fixture()
    def tampered_golden(self, tmp_path):
        dst = tmp_path / "golden"
        shutil.copytree(DEFAULT_GOLDEN_DIR, dst)
        path = golden_path(dst, "eslurm-base")
        payload = json.loads(path.read_text())
        payload["trace"]["digest"] = "sha256:" + "f" * 64
        path.write_text(dump_canonical(payload))
        return dst

    def test_tampered_golden_exits_nonzero(self, tampered_golden, capsys):
        rc = main(["verify", "--layer", "golden", "--golden-dir", str(tampered_golden)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_update_golden_regenerates_and_passes(self, tampered_golden, capsys):
        rc = main(
            ["verify", "--layer", "golden", "--golden-dir", str(tampered_golden), "--update-golden"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[gold] wrote" in out and "verify: OK" in out

    def test_empty_golden_dir_exits_nonzero(self, tmp_path, capsys):
        rc = main(["verify", "--layer", "golden", "--golden-dir", str(tmp_path / "empty")])
        assert rc == 1
        assert "--update-golden" in capsys.readouterr().out


class TestBenchCheckCli:
    def _payload(self, rm, cpu, tmp_path):
        # minimal schema-valid bench payload
        payload = {
            "schema": "repro-bench/1",
            "name": f"{rm}-1024",
            "seed": 0,
            "scenario": {
                "rm": rm, "n_nodes": 1024, "n_satellites": 2,
                "failures": False, "n_jobs": 10, "horizon_s": 100.0,
            },
            "sim_time_s": 100.0,
            "events": 50,
            "events_per_sim_s": 0.5,
            "peak_heap_depth": 4,
            "counters": {"rm.master.msgs": 10.0 if rm == "eslurm" else 100.0},
            "gauges": {},
            "histograms": {},
            "master": {"cpu_time_min": cpu, "sockets_peak": 5.0 if rm == "eslurm" else 50.0},
            "schedule": {"n_jobs": 10},
        }
        path = tmp_path / f"BENCH_{rm}.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_healthy_pair_exits_zero(self, tmp_path, capsys):
        files = [self._payload("slurm", 8.0, tmp_path), self._payload("eslurm", 2.0, tmp_path)]
        assert main(["bench", "check", *files]) == 0
        assert "bench check: OK" in capsys.readouterr().out

    def test_violated_relation_exits_nonzero(self, tmp_path, capsys):
        files = [self._payload("slurm", 2.0, tmp_path), self._payload("eslurm", 8.0, tmp_path)]
        assert main(["bench", "check", *files]) == 1
        assert "bench check: FAIL" in capsys.readouterr().out
