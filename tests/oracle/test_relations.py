"""The relation framework, the registry, and the bench-payload judge."""

import pytest

from repro.oracle.relations import (
    MASTER_LOAD_NODE_THRESHOLD,
    Relation,
    RelationResult,
    check_bench_payloads,
    relations_table,
)


def _bench_payload(rm, seed=0, n_nodes=1024, cpu=10.0, sockets=100.0, msgs=1000.0, events=500):
    return {
        "name": f"{rm}-{n_nodes}",
        "seed": seed,
        "scenario": {"rm": rm, "n_nodes": n_nodes, "n_satellites": 2, "failures": False},
        "events": events,
        "sim_time_s": 14400.0,
        "counters": {"rm.master.msgs": msgs},
        "master": {"cpu_time_min": cpu, "sockets_peak": sockets},
    }


class TestFramework:
    def test_result_line_shows_status_layer_and_name(self):
        ok_line = RelationResult("x", True, "fine", layer="metamorphic").line()
        assert ok_line.startswith("[ok  ]") and "metamorphic" in ok_line and "x" in ok_line
        assert RelationResult("x", False, "broke").line().startswith("[FAIL]")

    def test_base_relation_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Relation().run()

    def test_registry_names_unique_and_paper_mapped(self):
        relations = relations_table()
        names = [r.name for r in relations]
        assert len(names) == len(set(names))
        assert len(relations) >= 8  # 3 differential + 5 metamorphic
        for relation in relations:
            assert relation.layer in ("differential", "metamorphic")
            assert relation.section != "-", f"{relation.name} lacks a paper section"
            assert relation.claim != "-", f"{relation.name} lacks a claim"


class TestSharedInvariantRegistry:
    def test_chaos_module_reexports_oracle_definitions(self):
        import repro.chaos.invariants as chaos_inv
        import repro.oracle.invariants as oracle_inv

        for name in chaos_inv.__all__:
            assert getattr(chaos_inv, name) is getattr(oracle_inv, name)

    def test_chaos_package_surface_unchanged(self):
        from repro.chaos import ChaosContext, InvariantRegistry, default_invariants
        from repro.oracle import invariants as oracle_inv

        assert ChaosContext is oracle_inv.ChaosContext
        assert InvariantRegistry is oracle_inv.InvariantRegistry
        names = {type(i).__name__ for i in default_invariants()}
        assert "SatelliteLegality" in names and "NodeConservation" in names


class TestBenchCheck:
    def test_healthy_pair_passes(self):
        results = check_bench_payloads(
            [
                _bench_payload("slurm", cpu=10.0, sockets=300.0, msgs=9000.0),
                _bench_payload("eslurm", cpu=2.0, sockets=5.0, msgs=900.0),
            ]
        )
        assert results and all(r.ok for r in results)
        assert {r.layer for r in results} == {"bench"}

    def test_tampered_eslurm_master_load_fails(self):
        results = check_bench_payloads(
            [
                _bench_payload("slurm", cpu=10.0),
                _bench_payload("eslurm", cpu=11.0),  # master got *more* expensive
            ]
        )
        failing = [r for r in results if not r.ok]
        assert any(r.relation == "master-load/cpu_time_min" for r in failing)

    def test_dead_simulation_fails_liveness(self):
        payload = _bench_payload("slurm", events=0)
        results = check_bench_payloads([payload])
        assert [r for r in results if r.relation == "bench-liveness"][0].ok is False

    def test_below_threshold_pairs_are_not_judged(self):
        results = check_bench_payloads(
            [
                _bench_payload("slurm", n_nodes=MASTER_LOAD_NODE_THRESHOLD // 2, cpu=1.0),
                _bench_payload("eslurm", n_nodes=MASTER_LOAD_NODE_THRESHOLD // 2, cpu=9.0),
            ]
        )
        assert all(r.relation == "bench-liveness" for r in results)

    def test_unpaired_payloads_only_get_liveness(self):
        results = check_bench_payloads([_bench_payload("eslurm")])
        assert all(r.relation == "bench-liveness" for r in results)

    def test_missing_msgs_counter_skips_that_comparison(self):
        slurm = _bench_payload("slurm", cpu=10.0)
        eslurm = _bench_payload("eslurm", cpu=2.0)
        del slurm["counters"]["rm.master.msgs"]
        relations = {r.relation for r in check_bench_payloads([slurm, eslurm])}
        assert "master-load/cpu_time_min" in relations
        assert "master-load/rm.master.msgs" not in relations
