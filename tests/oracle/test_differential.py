"""Differential relations: hold on the real tree, fail when perturbed.

Every relation is exercised in both directions — the paper-shaped
ordering must hold on the code as written, and a deliberately broken
pairing must be *rejected*.  An oracle that cannot fail verifies
nothing.
"""

import pytest

from repro.fptree.predictor import NullPredictor
from repro.oracle.differential import (
    DIFFERENTIAL_RELATIONS,
    EstimatorGateRelation,
    FPTreeFailureBoundRelation,
    LifecycleEquivalenceRelation,
    MalleableThroughputRelation,
    MasterOffloadRelation,
    SnapshotEquivalenceRelation,
    TopologyPlacementRelation,
)


class TestRelationsHold:
    def test_master_offload(self, oracle_seed):
        result = MasterOffloadRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_fptree_failure_bound(self, oracle_seed):
        result = FPTreeFailureBoundRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_estimator_aea_gate(self, oracle_seed):
        result = EstimatorGateRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_malleable_throughput(self, oracle_seed):
        result = MalleableThroughputRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_topology_placement(self, oracle_seed):
        result = TopologyPlacementRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_snapshot_equivalence(self, oracle_seed):
        result = SnapshotEquivalenceRelation(n_jobs=20).run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_lifecycle_equivalence(self, oracle_seed):
        result = LifecycleEquivalenceRelation(n_jobs=30).run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_registry_is_the_seven_relations(self):
        assert [type(r) for r in DIFFERENTIAL_RELATIONS] == [
            MasterOffloadRelation,
            FPTreeFailureBoundRelation,
            EstimatorGateRelation,
            MalleableThroughputRelation,
            TopologyPlacementRelation,
            SnapshotEquivalenceRelation,
            LifecycleEquivalenceRelation,
        ]


class _SkewedSeeds(LifecycleEquivalenceRelation):
    """Feeds the generator arm a different trace — bytes must now differ."""

    def _arm(self, rm, lifecycle, seed, malleable):
        return super()._arm(
            rm, lifecycle, seed + 1 if lifecycle == "generator" else seed, malleable
        )


class _SwappedArms(MasterOffloadRelation):
    """Runs slurm where eslurm should be — the ordering must now fail."""

    def _arm(self, rm, seed):
        return super()._arm("eslurm" if rm == "slurm" else "slurm", seed)




class TestPerturbationsAreCaught:
    def test_swapped_arms_fail_master_offload(self):
        result = _SwappedArms().run(seed=0)
        assert not result.ok
        assert "!<" in result.detail

    def test_null_predictor_fails_fptree_bound(self, monkeypatch):
        # With no prediction the "FP" tree degenerates to the plain tree,
        # so the strict ordering against the plain tree must be rejected.
        monkeypatch.setattr(
            "repro.oracle.differential.OraclePredictor", lambda cluster: NullPredictor()
        )
        result = FPTreeFailureBoundRelation().run(seed=0)
        assert not result.ok

    def test_skewed_trace_fails_lifecycle_equivalence(self):
        result = _SkewedSeeds(n_jobs=30).run(seed=0)
        assert not result.ok
        assert "diverged" in result.detail

    def test_impossible_tolerance_fails_estimator_gate(self):
        # Demanding the gated error be ~0x of the user error is unsatisfiable;
        # the relation must report the breach rather than clamp it away.
        relation = EstimatorGateRelation()
        relation.TOLERANCE = 1e-6
        result = relation.run(seed=0)
        assert not result.ok

    def test_crippled_elastic_arm_fails_throughput(self):
        # Give the malleable arm a quarter of the horizon: it must now
        # complete fewer jobs, and the ordering has to catch it.
        class Crippled(MalleableThroughputRelation):
            def _arm(self, seed, malleable):
                if not malleable:
                    return super()._arm(seed, malleable)
                saved = self.horizon_s
                self.horizon_s = saved / 4
                try:
                    return super()._arm(seed, malleable)
                finally:
                    self.horizon_s = saved

        result = Crippled().run(seed=0)
        assert not result.ok
        assert "fewer jobs" in result.detail

    def test_spread_placement_fails_fragmentation(self, monkeypatch):
        # A "topology" policy that strides across the free list scatters
        # allocations and drops the first-fit floor: it must score worse
        # than first-fit on some pool state, which the relation rejects.
        import repro.oracle.differential as diff

        class Spread(diff.TopologyAwarePlacement):
            def _compact_pick(self, candidates, k):
                step = max(1, len(candidates) // k)
                pick = candidates[::step][:k]
                if len(pick) < k:
                    pick = candidates[:k]
                return tuple(pick)

        monkeypatch.setattr(diff, "TopologyAwarePlacement", Spread)
        result = TopologyPlacementRelation().run(seed=0)
        assert not result.ok
        assert "scored worse" in result.detail

    def test_leaky_restore_fails_snapshot_equivalence(self, monkeypatch):
        # A restore that schedules one stray no-op event after replay is
        # no longer byte-identical — the extra event shifts every
        # subsequent (time, priority, seq) triple and the cold arm must
        # be rejected, not absorbed.
        import repro.snapshot as snap

        real_restore = snap.restore

        def leaky(snapshot, verify=True, on_build=None):
            world = real_restore(snapshot, verify=verify, on_build=on_build)
            world.sim.call_at(world.sim.now, lambda: None)
            return world

        monkeypatch.setattr(snap, "restore", leaky)
        result = SnapshotEquivalenceRelation(n_jobs=10).run(seed=0)
        assert not result.ok
        assert "cold restore diverged" in result.detail
