"""Differential relations: hold on the real tree, fail when perturbed.

Every relation is exercised in both directions — the paper-shaped
ordering must hold on the code as written, and a deliberately broken
pairing must be *rejected*.  An oracle that cannot fail verifies
nothing.
"""

import pytest

from repro.fptree.predictor import NullPredictor
from repro.oracle.differential import (
    DIFFERENTIAL_RELATIONS,
    EstimatorGateRelation,
    FPTreeFailureBoundRelation,
    MasterOffloadRelation,
)


class TestRelationsHold:
    def test_master_offload(self, oracle_seed):
        result = MasterOffloadRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_fptree_failure_bound(self, oracle_seed):
        result = FPTreeFailureBoundRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_estimator_aea_gate(self, oracle_seed):
        result = EstimatorGateRelation().run(seed=oracle_seed)
        assert result.ok, result.detail

    def test_registry_is_the_three_relations(self):
        assert [type(r) for r in DIFFERENTIAL_RELATIONS] == [
            MasterOffloadRelation,
            FPTreeFailureBoundRelation,
            EstimatorGateRelation,
        ]


class _SwappedArms(MasterOffloadRelation):
    """Runs slurm where eslurm should be — the ordering must now fail."""

    def _arm(self, rm, seed):
        return super()._arm("eslurm" if rm == "slurm" else "slurm", seed)


class TestPerturbationsAreCaught:
    def test_swapped_arms_fail_master_offload(self):
        result = _SwappedArms().run(seed=0)
        assert not result.ok
        assert "!<" in result.detail

    def test_null_predictor_fails_fptree_bound(self, monkeypatch):
        # With no prediction the "FP" tree degenerates to the plain tree,
        # so the strict ordering against the plain tree must be rejected.
        monkeypatch.setattr(
            "repro.oracle.differential.OraclePredictor", lambda cluster: NullPredictor()
        )
        result = FPTreeFailureBoundRelation().run(seed=0)
        assert not result.ok

    def test_impossible_tolerance_fails_estimator_gate(self):
        # Demanding the gated error be ~0x of the user error is unsatisfiable;
        # the relation must report the breach rather than clamp it away.
        relation = EstimatorGateRelation()
        relation.TOLERANCE = 1e-6
        result = relation.run(seed=0)
        assert not result.ok
