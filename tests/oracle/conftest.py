"""Seed parameterization for the oracle property tests.

Any test taking an ``oracle_seed`` argument is swept over
:data:`FAST_SEEDS` in the default (tier-1) run and over
:data:`SLOW_SEEDS` as well when ``--slow`` is passed — the extra
parameters carry the ``slow`` marker, so they also disappear under
``-m "not slow"``.
"""

import pytest

#: always run — small, diverse, and historically the incident seeds
FAST_SEEDS = (0, 1, 7, 42, 1337)

#: the wide sweep — 25 extra seeds for ``--slow`` runs
SLOW_SEEDS = tuple(s for s in range(2, 31) if s not in FAST_SEEDS)


def pytest_generate_tests(metafunc):
    if "oracle_seed" not in metafunc.fixturenames:
        return
    params = [pytest.param(s, id=f"seed{s}") for s in FAST_SEEDS]
    params += [
        pytest.param(s, id=f"seed{s}", marks=pytest.mark.slow) for s in SLOW_SEEDS
    ]
    metafunc.parametrize("oracle_seed", params)
