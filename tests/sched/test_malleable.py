"""Malleability protocol: job resize lifecycle, pool ops, elastic planning."""

import pytest

from repro.errors import SchedulingError
from repro.sched import BackfillScheduler, Job, JobQueue, NodePool


def make_job(job_id, n_nodes, runtime=100.0, estimate=None, submit=0.0,
             min_nodes=0, max_nodes=0):
    return Job(
        job_id=job_id,
        name=f"job{job_id}",
        user="u",
        n_nodes=n_nodes,
        runtime_s=runtime,
        user_estimate_s=estimate if estimate is not None else runtime,
        submit_time=submit,
        min_nodes=min_nodes,
        max_nodes=max_nodes,
    )


def elastic(job_id, n_nodes, min_nodes, max_nodes, runtime=100.0, estimate=None):
    return make_job(job_id, n_nodes, runtime=runtime, estimate=estimate,
                    min_nodes=min_nodes, max_nodes=max_nodes)


def queued(*jobs):
    q = JobQueue()
    for j in jobs:
        q.submit(j)
    return q


class TestJobMalleability:
    def test_rigid_by_default(self):
        j = make_job(1, 4)
        assert not j.malleable
        assert (j.min_nodes, j.max_nodes) == (4, 4)

    def test_declared_range_resolves(self):
        j = elastic(1, 4, 2, 8)
        assert j.malleable
        assert j.width == 4  # pre-start: the requested width

    def test_invalid_range_rejected(self):
        with pytest.raises(SchedulingError):
            elastic(1, 4, 5, 8)  # min > n_nodes
        with pytest.raises(SchedulingError):
            elastic(1, 4, 2, 3)  # max < n_nodes

    def test_start_accepts_any_width_in_range(self):
        j = elastic(1, 4, 2, 8)
        j.start(0.0, (0, 1))
        assert j.width == 2

    def test_start_outside_range_rejected(self):
        j = elastic(1, 4, 2, 8)
        with pytest.raises(SchedulingError):
            j.start(0.0, (0,))

    def test_rigid_start_requires_exact_width(self):
        j = make_job(1, 4)
        with pytest.raises(SchedulingError):
            j.start(0.0, (0, 1))

    def test_grow_and_shrink_update_width(self):
        j = elastic(1, 4, 2, 8)
        j.start(0.0, (0, 1, 2, 3))
        j.grow(10.0, (4, 5))
        assert j.width == 6
        j.shrink(20.0, (0, 5))
        assert set(j.allocated_nodes) == {1, 2, 3, 4}
        assert j.resize_count == 2

    def test_grow_past_max_rejected(self):
        j = elastic(1, 4, 2, 5)
        j.start(0.0, (0, 1, 2, 3))
        with pytest.raises(SchedulingError):
            j.grow(1.0, (4, 5))

    def test_shrink_below_min_rejected(self):
        j = elastic(1, 4, 3, 8)
        j.start(0.0, (0, 1, 2, 3))
        with pytest.raises(SchedulingError):
            j.shrink(1.0, (0, 1))

    def test_rigid_job_cannot_resize(self):
        j = make_job(1, 4)
        j.start(0.0, (0, 1, 2, 3))
        with pytest.raises(SchedulingError):
            j.grow(1.0, (4,))

    def test_node_seconds_integrates_widths(self):
        # 10 s at width 4, then 10 s at width 6: 40 + 60 node-seconds.
        j = elastic(1, 4, 2, 8, runtime=1000.0)
        j.start(0.0, (0, 1, 2, 3))
        j.grow(10.0, (4, 5))
        j.finish(20.0)
        assert j.node_seconds == pytest.approx(100.0)

    def test_rigid_node_seconds_closed_form(self):
        j = make_job(1, 4)
        j.start(0.0, (0, 1, 2, 3))
        j.finish(25.0)
        assert j.node_seconds == pytest.approx(100.0)


class TestPoolResizeOps:
    def test_grow_allocation_takes_free_nodes(self):
        pool = NodePool(range(8))
        j = elastic(1, 4, 2, 8)
        pool.allocate(j, now=0.0)
        added = pool.grow_allocation(1, 2)
        assert len(added) == 2
        assert pool.n_free == 2
        assert len(pool.running[1].node_ids) == 6

    def test_shrink_allocation_returns_nodes(self):
        pool = NodePool(range(8))
        j = elastic(1, 4, 2, 8)
        nodes = pool.allocate(j, now=0.0)
        pool.shrink_allocation(1, nodes[-2:])
        assert pool.n_free == 6
        assert len(pool.running[1].node_ids) == 2

    def test_shrink_keeps_down_nodes_out_of_free(self):
        pool = NodePool(range(8))
        j = elastic(1, 4, 2, 8)
        nodes = pool.allocate(j, now=0.0)
        pool.mark_down(nodes[0])
        pool.shrink_allocation(1, (nodes[0],))
        assert nodes[0] not in pool.free_ids()
        pool.mark_up(nodes[0])
        assert nodes[0] in pool.free_ids()

    def test_retime_updates_believed_end(self):
        pool = NodePool(range(8))
        j = elastic(1, 4, 2, 8, estimate=100.0)
        pool.allocate(j, now=0.0)
        pool.retime(1, 250.0)
        assert pool.believed_ends() == [(250.0, 4)]

    def test_resize_unknown_job_rejected(self):
        pool = NodePool(range(8))
        with pytest.raises(SchedulingError):
            pool.grow_allocation(9, 1)
        with pytest.raises(SchedulingError):
            pool.retime(9, 1.0)


class TestShrunkStarts:
    def test_blocked_elastic_head_starts_shrunk(self):
        pool = NodePool(range(10))
        running = make_job(0, 6, estimate=100.0)
        pool.allocate(running, now=0.0)
        head = elastic(1, 8, 2, 8, estimate=100.0)
        q = queued(head)
        started = BackfillScheduler(malleable=True).plan(q, pool, now=0.0)
        assert [j.job_id for j, _ in started] == [1]
        assert len(started[0][1]) == 4  # every free node, not the full 8
        # Work conservation stretches the believed wall clock: 100 * 8/4.
        assert pool.running[1].believed_end == pytest.approx(200.0)

    def test_rigid_mode_never_starts_shrunk(self):
        pool = NodePool(range(10))
        pool.allocate(make_job(0, 6, estimate=100.0), now=0.0)
        q = queued(elastic(1, 8, 2, 8))
        assert BackfillScheduler(malleable=False).plan(q, pool, now=0.0) == []

    def test_head_below_min_width_stays_queued(self):
        pool = NodePool(range(10))
        pool.allocate(make_job(0, 8, estimate=100.0), now=0.0)
        q = queued(elastic(1, 8, 4, 8))  # only 2 free < min 4
        assert BackfillScheduler(malleable=True).plan(q, pool, now=0.0) == []


class TestPlanResizes:
    def test_contraction_admits_blocked_head(self):
        pool = NodePool(range(10))
        donor = elastic(1, 8, 2, 10, estimate=100.0)
        pool.allocate(donor, now=0.0)
        donor.start(0.0, pool.running[1].node_ids)
        head = make_job(2, 6)
        q = queued(head)
        sched = BackfillScheduler(malleable=True)
        decisions = sched.plan_resizes(q, pool, now=0.0)
        assert len(decisions) == 1
        assert len(decisions[0].removed) == 4  # deficit: 6 needed - 2 free
        # Donors give their highest ids first.
        assert decisions[0].removed == (4, 5, 6, 7)
        assert pool.n_free == 6

    def test_no_partial_contraction(self):
        pool = NodePool(range(10))
        donor = elastic(1, 8, 6, 10, estimate=100.0)  # can give only 2
        pool.allocate(donor, now=0.0)
        donor.start(0.0, pool.running[1].node_ids)
        q = queued(make_job(2, 6))  # deficit 4 > capacity 2
        sched = BackfillScheduler(malleable=True)
        assert sched.plan_resizes(q, pool, now=0.0) == []
        assert len(pool.running[1].node_ids) == 8  # untouched

    def test_growth_fills_idle_machine(self):
        pool = NodePool(range(10))
        grower = elastic(1, 4, 2, 10, estimate=100.0)
        pool.allocate(grower, now=0.0)
        grower.start(0.0, pool.running[1].node_ids)
        sched = BackfillScheduler(malleable=True)
        decisions = sched.plan_resizes(JobQueue(), pool, now=0.0)
        assert len(decisions) == 1
        assert len(decisions[0].added) == 6  # all the way to max_nodes
        assert pool.n_free == 0

    def test_rigid_mode_plans_nothing(self):
        pool = NodePool(range(10))
        grower = elastic(1, 4, 2, 10, estimate=100.0)
        pool.allocate(grower, now=0.0)
        grower.start(0.0, pool.running[1].node_ids)
        assert BackfillScheduler(malleable=False).plan_resizes(
            JobQueue(), pool, now=0.0) == []


class TestGrowSpareNodeBudget:
    """Regression: the malleable path against the EASY spare-node fix.

    ``plan`` charges ``extra_nodes`` for any backfilled job whose kill
    limit reaches past the head's shadow time.  A *growing* job believed
    to run past the shadow holds spares exactly the same way, so growth
    must burn the same budget — otherwise the grower re-consumes spares
    a backfill decision (or an earlier grower) already spoke for, and
    together they encroach on the head's reservation.
    """

    def _blocked_head_state(self, head_nodes, head_min):
        # 20 nodes; a rigid job holds 10 until t=100; an elastic job
        # holds 4 and is believed to run far past any shadow time.
        pool = NodePool(range(20))
        rigid = make_job(1, 10, estimate=100.0)
        pool.allocate(rigid, now=0.0)
        rigid.start(0.0, pool.running[1].node_ids)
        grower = elastic(2, 4, 2, 20, estimate=9999.0)
        pool.allocate(grower, now=0.0)
        grower.start(0.0, pool.running[2].node_ids)
        # The head reserves at its *min* width (the width phase 1 would
        # actually start it at), so ``head_min`` pins the spare budget.
        head = elastic(3, head_nodes, head_min, head_nodes)
        return pool, queued(head)

    def test_grower_past_shadow_capped_by_extra_budget(self):
        # Head's min width 6 consumes every free node: extra = 0.
        pool, q = self._blocked_head_state(16, 6)
        decisions = BackfillScheduler(malleable=True).plan_resizes(q, pool, now=0.0)
        assert decisions == []  # no budget -> no growth
        assert len(pool.running[2].node_ids) == 4

    def test_grower_within_budget_takes_only_spares(self):
        # Head's min width 4 leaves 2 of the 6 free nodes spare.
        pool, q = self._blocked_head_state(14, 4)
        decisions = BackfillScheduler(malleable=True).plan_resizes(q, pool, now=0.0)
        assert len(decisions) == 1
        assert len(decisions[0].added) == 2  # capped at extra, not n_free=6
        assert len(pool.running[2].node_ids) == 6

    def test_two_growers_cannot_double_count_spares(self):
        # Same shape as TestSpareNodeAccounting's race, via growth: two
        # elastic jobs past the shadow share one extra budget of 2.
        pool = NodePool(range(20))
        rigid = make_job(1, 10, estimate=100.0)
        pool.allocate(rigid, now=0.0)
        rigid.start(0.0, pool.running[1].node_ids)
        for job_id in (2, 3):
            g = elastic(job_id, 2, 2, 20, estimate=9999.0)
            pool.allocate(g, now=0.0)
            g.start(0.0, pool.running[job_id].node_ids)
        q = queued(elastic(4, 14, 4, 14))  # head min 4: extra = 6 - 4 = 2
        decisions = BackfillScheduler(malleable=True).plan_resizes(q, pool, now=0.0)
        grown = sum(len(d.added) for d in decisions)
        assert grown == 2  # one budget, not one per grower


class TestMalleableHeadReservation:
    """Regression: the EASY shadow walk reserves a malleable head at the
    width it can actually start at.

    Phase 1 starts a blocked elastic head *shrunk* as soon as
    ``min_nodes`` are free, so a reservation computed from its original
    ``n_nodes`` models a start that never happens: the shadow lands too
    late and the spare budget is charged at the wrong instant
    (the ROADMAP's rigid-width bug).
    """

    def _machine(self):
        # 20 nodes; a rigid job holds 10 until t=100; an elastic job
        # holds 4 forever; 6 free.
        pool = NodePool(range(20))
        rigid = make_job(1, 10, estimate=100.0)
        pool.allocate(rigid, now=0.0)
        rigid.start(0.0, pool.running[1].node_ids)
        grower = elastic(2, 4, 2, 20, estimate=9999.0)
        pool.allocate(grower, now=0.0)
        grower.start(0.0, pool.running[2].node_ids)
        return pool

    def test_reservation_uses_min_width_for_malleable_head(self):
        pool = self._machine()
        head = elastic(3, 16, 8, 16)  # blocked even at min (8 > 6 free)
        sched = BackfillScheduler(malleable=True)
        shadow, extra = sched._reservation(head, pool, now=0.0)
        # min width 8 is satisfied at the rigid release (6 + 10 = 16
        # free): 8 spare nodes, not the 0 the rigid width 16 implied.
        assert shadow == 100.0
        assert extra == 8

    def test_rigid_mode_reservation_unchanged(self):
        pool = self._machine()
        head = elastic(3, 16, 8, 16)
        shadow, extra = BackfillScheduler()._reservation(head, pool, now=0.0)
        assert shadow == 100.0
        assert extra == 0  # malleable off: the head's full width reserves

    def test_head_startable_at_min_shadow_is_now(self):
        pool = self._machine()
        head = elastic(3, 16, 2, 16)  # fits shrunk right now (2 <= 6)
        sched = BackfillScheduler(malleable=True)
        shadow, extra = sched._reservation(head, pool, now=5.0)
        assert shadow == 5.0
        assert extra == 4

    def test_backfill_uses_min_width_spare_budget(self):
        # A 6-node candidate with a kill limit far past the shadow can
        # only start on the *spare* budget.  At the head's min width the
        # budget is 8 >= 6 -> it backfills; the rigid width said 0.
        pool = self._machine()
        head = elastic(3, 16, 8, 16)
        filler = make_job(4, 6, runtime=5000.0, estimate=5000.0)
        q = queued(head, filler)
        decisions = BackfillScheduler(malleable=True).plan(q, pool, now=0.0)
        assert [job.job_id for job, _ in decisions] == [4]

    def test_rigid_mode_denies_that_backfill(self):
        pool = self._machine()
        head = elastic(3, 16, 8, 16)
        filler = make_job(4, 6, runtime=5000.0, estimate=5000.0)
        q = queued(head, filler)
        assert BackfillScheduler().plan(q, pool, now=0.0) == []
