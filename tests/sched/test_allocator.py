"""Tests for the node pool."""

import pytest

from repro.errors import SchedulingError
from repro.sched import Job, NodePool


def make_job(job_id=1, n_nodes=2, runtime=100.0, estimate=150.0):
    return Job(
        job_id=job_id,
        name="x",
        user="u",
        n_nodes=n_nodes,
        runtime_s=runtime,
        user_estimate_s=estimate,
        submit_time=0.0,
    )


class TestBasics:
    def test_counts(self):
        pool = NodePool(range(10))
        assert pool.n_total == 10
        assert pool.n_free == 10
        assert pool.n_busy == 0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SchedulingError):
            NodePool([1, 1, 2])

    def test_allocate_first_fit_by_id(self):
        pool = NodePool([5, 3, 9, 1])
        nodes = pool.allocate(make_job(n_nodes=2), now=0.0)
        assert nodes == (1, 3)
        assert pool.n_free == 2

    def test_allocate_too_big_rejected(self):
        pool = NodePool(range(3))
        with pytest.raises(SchedulingError):
            pool.allocate(make_job(n_nodes=5), now=0.0)
        assert not pool.fits(make_job(n_nodes=5))

    def test_release_returns_nodes(self):
        pool = NodePool(range(4))
        job = make_job(n_nodes=3)
        nodes = pool.allocate(job, now=0.0)
        released = pool.release(job.job_id)
        assert released == nodes
        assert pool.n_free == 4

    def test_release_unknown_job(self):
        with pytest.raises(SchedulingError):
            NodePool(range(2)).release(99)


class TestBelievedEnds:
    def test_sorted_by_end(self):
        pool = NodePool(range(10))
        early = make_job(job_id=1, n_nodes=2, estimate=50.0)
        late = make_job(job_id=2, n_nodes=3, estimate=500.0)
        pool.allocate(late, now=0.0)
        pool.allocate(early, now=0.0)
        ends = pool.believed_ends()
        assert ends == [(50.0, 2), (500.0, 3)]


class TestFailures:
    def test_mark_down_free_node(self):
        pool = NodePool(range(4))
        assert pool.mark_down(2) is None
        assert pool.n_free == 3
        assert pool.n_down == 1

    def test_mark_down_busy_node_returns_job(self):
        pool = NodePool(range(4))
        job = make_job(n_nodes=2)
        nodes = pool.allocate(job, now=0.0)
        assert pool.mark_down(nodes[0]) == job.job_id

    def test_down_node_not_refreed_on_release(self):
        pool = NodePool(range(4))
        job = make_job(n_nodes=2)
        nodes = pool.allocate(job, now=0.0)
        pool.mark_down(nodes[0])
        pool.release(job.job_id)
        assert pool.n_free == 3  # the down node stays out
        pool.mark_up(nodes[0])
        assert pool.n_free == 4

    def test_mark_up_while_job_still_holds_node(self):
        pool = NodePool(range(4))
        job = make_job(n_nodes=2)
        nodes = pool.allocate(job, now=0.0)
        pool.mark_down(nodes[0])
        pool.mark_up(nodes[0])  # job still running on it: not freed
        assert pool.n_free == 2
        assert pool.n_down == 0

    def test_unknown_node_rejected(self):
        pool = NodePool(range(2))
        with pytest.raises(SchedulingError):
            pool.mark_down(7)
        with pytest.raises(SchedulingError):
            pool.mark_up(7)


class TestUtilization:
    def test_utilization_now(self):
        pool = NodePool(range(10))
        pool.allocate(make_job(n_nodes=4), now=0.0)
        assert pool.utilization_now() == pytest.approx(0.4)
        pool.mark_down(9)
        assert pool.utilization_now() == pytest.approx(4 / 9)
