"""Tests for the node pool."""

import pytest

from repro.errors import SchedulingError
from repro.sched import Job, NodePool


def make_job(job_id=1, n_nodes=2, runtime=100.0, estimate=150.0):
    return Job(
        job_id=job_id,
        name="x",
        user="u",
        n_nodes=n_nodes,
        runtime_s=runtime,
        user_estimate_s=estimate,
        submit_time=0.0,
    )


class TestBasics:
    def test_counts(self):
        pool = NodePool(range(10))
        assert pool.n_total == 10
        assert pool.n_free == 10
        assert pool.n_busy == 0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SchedulingError):
            NodePool([1, 1, 2])

    def test_allocate_first_fit_by_id(self):
        pool = NodePool([5, 3, 9, 1])
        nodes = pool.allocate(make_job(n_nodes=2), now=0.0)
        assert nodes == (1, 3)
        assert pool.n_free == 2

    def test_allocate_too_big_rejected(self):
        pool = NodePool(range(3))
        with pytest.raises(SchedulingError):
            pool.allocate(make_job(n_nodes=5), now=0.0)
        assert not pool.fits(make_job(n_nodes=5))

    def test_release_returns_nodes(self):
        pool = NodePool(range(4))
        job = make_job(n_nodes=3)
        nodes = pool.allocate(job, now=0.0)
        released = pool.release(job.job_id)
        assert released == nodes
        assert pool.n_free == 4

    def test_release_unknown_job(self):
        with pytest.raises(SchedulingError):
            NodePool(range(2)).release(99)


class TestBelievedEnds:
    def test_sorted_by_end(self):
        pool = NodePool(range(10))
        early = make_job(job_id=1, n_nodes=2, estimate=50.0)
        late = make_job(job_id=2, n_nodes=3, estimate=500.0)
        pool.allocate(late, now=0.0)
        pool.allocate(early, now=0.0)
        ends = pool.believed_ends()
        assert ends == [(50.0, 2), (500.0, 3)]


class TestFailures:
    def test_mark_down_free_node(self):
        pool = NodePool(range(4))
        assert pool.mark_down(2) is None
        assert pool.n_free == 3
        assert pool.n_down == 1

    def test_mark_down_busy_node_returns_job(self):
        pool = NodePool(range(4))
        job = make_job(n_nodes=2)
        nodes = pool.allocate(job, now=0.0)
        assert pool.mark_down(nodes[0]) == job.job_id

    def test_down_node_not_refreed_on_release(self):
        pool = NodePool(range(4))
        job = make_job(n_nodes=2)
        nodes = pool.allocate(job, now=0.0)
        pool.mark_down(nodes[0])
        pool.release(job.job_id)
        assert pool.n_free == 3  # the down node stays out
        pool.mark_up(nodes[0])
        assert pool.n_free == 4

    def test_mark_up_while_job_still_holds_node(self):
        pool = NodePool(range(4))
        job = make_job(n_nodes=2)
        nodes = pool.allocate(job, now=0.0)
        pool.mark_down(nodes[0])
        pool.mark_up(nodes[0])  # job still running on it: not freed
        assert pool.n_free == 2
        assert pool.n_down == 0

    def test_unknown_node_rejected(self):
        pool = NodePool(range(2))
        with pytest.raises(SchedulingError):
            pool.mark_down(7)
        with pytest.raises(SchedulingError):
            pool.mark_up(7)


class TestUtilization:
    def test_utilization_now(self):
        pool = NodePool(range(10))
        pool.allocate(make_job(n_nodes=4), now=0.0)
        assert pool.utilization_now() == pytest.approx(0.4)
        pool.mark_down(9)
        assert pool.utilization_now() == pytest.approx(4 / 9)


class TestLazyHeap:
    """The lazy min-heap must be observationally identical to sorted(free)[:k]."""

    def test_random_ops_match_sorted_reference(self):
        import random

        rng = random.Random(1234)
        pool = NodePool(range(64))
        model_free = set(range(64))
        model_running = {}
        next_id = 1
        for _ in range(500):
            op = rng.random()
            if op < 0.5 and len(model_free) >= 2:
                k = rng.randint(1, min(4, len(model_free)))
                job = make_job(job_id=next_id, n_nodes=k)
                next_id += 1
                got = pool.allocate(job, now=0.0)
                want = tuple(sorted(model_free)[:k])
                assert got == want
                model_free -= set(want)
                model_running[job.job_id] = want
            elif op < 0.8 and model_running:
                job_id = rng.choice(sorted(model_running))
                nodes = model_running.pop(job_id)
                pool.release(job_id)
                model_free |= set(n for n in nodes if n not in pool.down_ids())
            elif op < 0.9:
                nid = rng.randrange(64)
                killed = pool.mark_down(nid)
                model_free.discard(nid)
                if killed is not None:
                    nodes = model_running.pop(killed)
                    pool.release(killed)
                    model_free |= set(n for n in nodes if n not in pool.down_ids())
            else:
                nid = rng.randrange(64)
                was_down = nid in pool.down_ids()
                pool.mark_up(nid)
                held = any(nid in nodes for nodes in model_running.values())
                if was_down and not held:
                    model_free.add(nid)
            assert pool.free_ids() == frozenset(model_free)

    def test_release_reuses_lowest_ids(self):
        pool = NodePool(range(8))
        a = make_job(job_id=1, n_nodes=4)
        b = make_job(job_id=2, n_nodes=2)
        assert pool.allocate(a, 0.0) == (0, 1, 2, 3)
        assert pool.allocate(b, 0.0) == (4, 5)
        pool.release(1)
        c = make_job(job_id=3, n_nodes=3)
        assert pool.allocate(c, 0.0) == (0, 1, 2)

    def test_stale_heap_entry_after_mark_down_is_skipped(self):
        pool = NodePool(range(4))
        pool.mark_down(0)  # heap still holds id 0; set does not
        job = make_job(job_id=1, n_nodes=2)
        assert pool.allocate(job, 0.0) == (1, 2)

    def test_heap_stays_bounded_under_churn(self):
        pool = NodePool(range(16))
        for i in range(200):
            job = make_job(job_id=i + 1, n_nodes=8)
            pool.allocate(job, 0.0)
            pool.release(job.job_id)
        # Lazy pushes accumulate; the rebuild keeps the heap O(n_total).
        assert len(pool._free_heap) <= 4 * pool.n_total
        job = make_job(job_id=999, n_nodes=3)
        assert pool.allocate(job, 0.0) == (0, 1, 2)


class TestBelievedEndsCache:
    def test_cache_invalidated_on_allocate_and_release(self):
        pool = NodePool(range(10))
        a = make_job(job_id=1, n_nodes=2, estimate=50.0)
        pool.allocate(a, now=0.0)
        assert pool.believed_ends() == [(50.0, 2)]
        b = make_job(job_id=2, n_nodes=3, estimate=20.0)
        pool.allocate(b, now=0.0)
        assert pool.believed_ends() == [(20.0, 3), (50.0, 2)]
        pool.release(2)
        assert pool.believed_ends() == [(50.0, 2)]

    def test_repeated_calls_return_same_list(self):
        pool = NodePool(range(4))
        pool.allocate(make_job(job_id=1, n_nodes=1, estimate=10.0), now=0.0)
        first = pool.believed_ends()
        assert pool.believed_ends() is first  # memoized between mutations
