"""Placement policies: hop scoring, first-fit, topology-aware selection."""

import random

import pytest

from repro.cluster.topology import Topology
from repro.errors import ConfigurationError, SchedulingError
from repro.sched import (
    FirstFitPlacement,
    Job,
    NodePool,
    TopologyAwarePlacement,
    build_placement,
    placement_score,
)
from repro.sched.placement import placement_pair_counts

#: tiny machine: 2 nodes/board, 2 boards/chassis, 2 chassis/rack (8/rack)
TINY = Topology(nodes_per_board=2, boards_per_chassis=2, chassis_per_rack=2)


class TestPlacementScore:
    def test_singleton_scores_zero(self):
        assert placement_score([3], TINY) == 0.0
        assert placement_score([], TINY) == 0.0

    def test_same_board_pair(self):
        assert placement_score([0, 1], TINY) == 1.0

    def test_same_chassis_pair(self):
        assert placement_score([0, 2], TINY) == 2.0

    def test_same_rack_pair(self):
        assert placement_score([0, 4], TINY) == 3.0

    def test_cross_rack_pair(self):
        assert placement_score([0, 8], TINY) == 4.0

    def test_pair_counts_partition_all_pairs(self):
        nodes = [0, 1, 2, 5, 9, 14]
        counts = placement_pair_counts(nodes, TINY)
        assert sum(counts.values()) == len(nodes) * (len(nodes) - 1) // 2

    def test_matches_pairwise_hop_levels(self):
        nodes = [0, 3, 4, 8, 11]
        pairwise = [
            TINY.hop_level(a, b)
            for i, a in enumerate(nodes)
            for b in nodes[i + 1:]
        ]
        expected = sum(int(h) for h in pairwise) / len(pairwise)
        assert placement_score(nodes, TINY) == pytest.approx(expected)


class TestFirstFit:
    def test_selects_k_smallest(self):
        assert FirstFitPlacement().select({9, 3, 7, 1}, 2) == (1, 3)

    def test_insufficient_free_returns_none(self):
        assert FirstFitPlacement().select({1, 2}, 3) is None


class TestTopologyAware:
    def test_equal_tightness_prefers_lowest_container(self):
        policy = TopologyAwarePlacement(TINY)
        assert set(policy.select({0, 1, 4, 8, 9}, 2)) == {0, 1}

    def test_prefers_tightest_container(self):
        # Chassis 2 (ids 8-11) has exactly 3 free; chassis 0 has 4 —
        # best-fit leaves the bigger hole intact for later jobs.
        policy = TopologyAwarePlacement(TINY)
        assert set(policy.select({0, 1, 2, 3, 9, 10, 11}, 3)) == {9, 10, 11}

    def test_never_scores_worse_than_first_fit(self):
        # The compactness floor the oracle pins, swept over random free
        # sets: the policy's pick never scores above first-fit's on the
        # identical pool state.
        rng = random.Random(7)
        policy = TopologyAwarePlacement(TINY)
        universe = list(range(48))
        for _ in range(200):
            free = set(rng.sample(universe, rng.randint(2, 32)))
            k = rng.randint(1, len(free))
            chosen = policy.select(set(free), k)
            baseline = sorted(free)[:k]
            assert len(chosen) == k and set(chosen) <= free
            assert placement_score(chosen, TINY) <= placement_score(
                baseline, TINY) + 1e-12

    def test_insufficient_free_returns_none(self):
        assert TopologyAwarePlacement(TINY).select({1, 2}, 3) is None

    def test_avoids_flagged_when_clean_feasible(self):
        policy = TopologyAwarePlacement(TINY, alert_source=lambda: {0, 1})
        chosen = policy.select({0, 1, 2, 3, 4, 5}, 3)
        assert set(chosen).isdisjoint({0, 1})
        assert policy.stats.flagged_selected == 0
        assert policy.stats.flagged_despite_clean == 0

    def test_overflows_into_flagged_when_forced(self):
        policy = TopologyAwarePlacement(TINY, alert_source=lambda: {0, 1})
        chosen = policy.select({0, 1, 2}, 3)
        assert set(chosen) == {0, 1, 2}  # never refuses a feasible alloc
        assert policy.stats.flagged_selected == 2
        # ...but the forced overflow is not a clean-first violation.
        assert policy.stats.flagged_despite_clean == 0

    def test_monitor_style_alert_source(self):
        class Monitor:
            def predicted_failed(self, among):
                return [n for n in among if n % 2 == 0]

        policy = TopologyAwarePlacement(TINY, alert_source=Monitor())
        chosen = policy.select(set(range(8)), 3)
        assert all(n % 2 == 1 for n in chosen)

    def test_stats_accumulate(self):
        policy = TopologyAwarePlacement(TINY)
        policy.select(set(range(8)), 2)
        policy.select(set(range(8)), 4)
        assert policy.stats.selections == 2
        assert policy.stats.mean_score > 0.0


class TestPoolIntegration:
    def _job(self, job_id, n):
        return Job(job_id, f"j{job_id}", "u", n, 100.0, 100.0, 0.0)

    def test_pool_routes_allocation_through_policy(self):
        pool = NodePool(range(16), placement=TopologyAwarePlacement(TINY))
        nodes = pool.allocate(self._job(1, 2), now=0.0)
        assert placement_score(nodes, TINY) == 1.0  # one full board
        assert pool.n_free == 14
        pool.release(1)
        assert pool.n_free == 16

    def test_policy_and_heap_stay_consistent(self):
        # Policy picks bypass the heap; later first-fit-style pops must
        # skip the stale entries rather than double-allocating.
        pool = NodePool(range(16), placement=TopologyAwarePlacement(TINY))
        a = pool.allocate(self._job(1, 6), now=0.0)
        b = pool.allocate(self._job(2, 6), now=0.0)
        assert set(a).isdisjoint(b)
        assert pool.n_free == 4

    def test_exhausted_pool_rejected(self):
        pool = NodePool(range(4), placement=TopologyAwarePlacement(TINY))
        pool.allocate(self._job(1, 3), now=0.0)
        with pytest.raises(SchedulingError):
            pool.allocate(self._job(2, 2), now=0.0)


class TestBuildPlacement:
    def test_first_fit_is_native_path(self):
        assert build_placement("first-fit") is None

    def test_topology_builds_policy(self):
        policy = build_placement("topology", TINY)
        assert isinstance(policy, TopologyAwarePlacement)
        assert policy.topology is TINY

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build_placement("round-robin")
