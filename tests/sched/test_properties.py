"""Property-based invariants for the scheduling core."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import BackfillScheduler, FcfsScheduler, Job, JobQueue, NodePool


@st.composite
def job_batch(draw):
    n_jobs = draw(st.integers(1, 20))
    jobs = []
    for i in range(n_jobs):
        runtime = draw(st.floats(1.0, 10_000.0))
        over = draw(st.floats(1.0, 5.0))
        jobs.append(
            Job(
                job_id=i,
                name=f"j{i}",
                user=f"u{draw(st.integers(0, 3))}",
                n_nodes=draw(st.integers(1, 16)),
                runtime_s=runtime,
                user_estimate_s=runtime * over,
                submit_time=float(i),
            )
        )
    return jobs


class TestPlanInvariants:
    @given(job_batch(), st.integers(4, 32))
    @settings(max_examples=60, deadline=None)
    def test_backfill_never_oversubscribes(self, jobs, n_nodes):
        pool = NodePool(range(n_nodes))
        queue = JobQueue()
        for j in jobs:
            if j.n_nodes <= n_nodes:
                queue.submit(j)
        decisions = BackfillScheduler().plan(queue, pool, now=0.0)
        allocated = [nid for _, nodes in decisions for nid in nodes]
        # no node double-allocated, all within the universe
        assert len(allocated) == len(set(allocated))
        assert all(0 <= nid < n_nodes for nid in allocated)
        assert pool.n_free == n_nodes - len(allocated)

    @given(job_batch(), st.integers(4, 32))
    @settings(max_examples=60, deadline=None)
    def test_started_jobs_leave_the_queue(self, jobs, n_nodes):
        pool = NodePool(range(n_nodes))
        queue = JobQueue()
        eligible = [j for j in jobs if j.n_nodes <= n_nodes]
        for j in eligible:
            queue.submit(j)
        decisions = BackfillScheduler().plan(queue, pool, now=0.0)
        started_ids = {j.job_id for j, _ in decisions}
        queued_ids = {j.job_id for j in queue}
        assert started_ids.isdisjoint(queued_ids)
        assert started_ids | queued_ids == {j.job_id for j in eligible}

    @given(job_batch(), st.integers(4, 32))
    @settings(max_examples=40, deadline=None)
    def test_backfill_starts_superset_of_fcfs(self, jobs, n_nodes):
        """EASY backfill never starts fewer jobs than FCFS on the same state."""

        def run(policy_cls):
            pool = NodePool(range(n_nodes))
            queue = JobQueue()
            for j in jobs:
                if j.n_nodes <= n_nodes:
                    queue.submit(
                        Job(
                            j.job_id, j.name, j.user, j.n_nodes, j.runtime_s,
                            j.user_estimate_s, j.submit_time,
                        )
                    )
            return {job.job_id for job, _ in policy_cls().plan(queue, pool, 0.0)}

        fcfs = run(FcfsScheduler)
        bf = run(BackfillScheduler)
        assert fcfs <= bf

    @given(job_batch(), st.integers(4, 32))
    @settings(max_examples=40, deadline=None)
    def test_fcfs_order_respected(self, jobs, n_nodes):
        pool = NodePool(range(n_nodes))
        queue = JobQueue()
        eligible = [j for j in jobs if j.n_nodes <= n_nodes]
        for j in eligible:
            queue.submit(j)
        decisions = FcfsScheduler().plan(queue, pool, now=0.0)
        started = [j.job_id for j, _ in decisions]
        # FCFS starts a prefix of the queue, in order
        assert started == [j.job_id for j in eligible[: len(started)]]
