"""Snapshot equivalence under hostile scheduler state.

Two families the straight-line equivalence sweep would rarely cut
through by chance: an *open* maintenance window (nodes drained, return
date known to the scheduler), and a malleable job mid-resize (elastic
protocol counters non-zero, pool holding a resized allocation).  In
both, resume-from-snapshot must stay byte-identical to the straight
run.  The announced-but-not-yet-effective failure sibling lives in
``tests/simkit/test_snapshot_seams.py`` next to the kernel seams.
"""

from repro.api import SimulationConfig, WorkloadConfig
from repro.snapshot import SimWorld
from tests.snapshot.helpers import cold_split_run, straight_run, warm_split_run


def boundary_of(config, predicate, setup=None):
    """Event index of the first boundary where ``predicate(world)`` holds.

    Deterministic: the same config + setup reproduces the same boundary,
    so the index can be reused to cut an independently built world.
    """
    world = SimWorld(config)
    if setup is not None:
        setup(world)
    while not predicate(world):
        before = world.sim.events_processed
        if world.run_events_until(before + 1) == 0:
            raise AssertionError("predicate never held before the horizon")
    return world.sim.events_processed


def assert_split_equivalent(config, k, setup=None):
    straight, _ = straight_run(config, setup=setup)
    snapshot, warm = warm_split_run(config, k, setup=setup)
    assert warm == straight
    assert cold_split_run(snapshot, setup=setup) == straight
    return snapshot


class TestMaintenanceWindowOpen:
    CONFIG = SimulationConfig(
        rm="eslurm", n_nodes=32, n_satellites=2, seed=3, n_jobs=30,
        horizon_s=86_400.0,
    )
    AT = 3 * 3600.0
    DURATION = 2 * 3600.0
    NODES = (0, 1, 2, 3)

    @classmethod
    def open_window(cls, world):
        world.cluster.failures.schedule_maintenance(cls.AT, cls.NODES, cls.DURATION)

    def test_resume_inside_window_is_byte_identical(self):
        k = boundary_of(
            self.CONFIG, lambda w: w.sim.now > self.AT, setup=self.open_window
        )
        snapshot = assert_split_equivalent(self.CONFIG, k, setup=self.open_window)
        # Premise: the cut really fell inside the open window.
        assert self.AT < snapshot.sim_now < self.AT + self.DURATION

    def test_window_end_survives_the_cut(self):
        k = boundary_of(
            self.CONFIG, lambda w: w.sim.now > self.AT, setup=self.open_window
        )
        _, warm = warm_split_run(self.CONFIG, k, setup=self.open_window)
        world = SimWorld(self.CONFIG)
        self.open_window(world)
        world.run_events_until(k)
        assert world.cluster.failures.maintenance_until(0) == self.AT + self.DURATION


class TestMalleableMidResize:
    # Elastic jobs need a workload that emits them; half the trace is
    # malleable so the protocol exercises grows AND shrinks by day end.
    CONFIG = SimulationConfig(
        rm="eslurm", n_nodes=16, n_satellites=2, seed=0, failures=True,
        n_jobs=40, horizon_s=86_400.0, malleable=True,
        workload=WorkloadConfig(max_nodes=8, jobs_per_day=40, malleable_fraction=0.5),
    )

    @staticmethod
    def resized(world):
        return world.rm.resize_grows + world.rm.resize_shrinks > 0

    def test_resume_just_after_first_resize_is_byte_identical(self):
        k = boundary_of(self.CONFIG, self.resized)
        snapshot = assert_split_equivalent(self.CONFIG, k)
        assert snapshot.state["sim"]["events_processed"] == k

    def test_resize_counters_are_part_of_the_captured_state(self):
        k = boundary_of(self.CONFIG, self.resized)
        snapshot, _ = warm_split_run(self.CONFIG, k)
        rm_state = snapshot.state["rm"]
        assert rm_state["resize_grows"] + rm_state["resize_shrinks"] > 0
