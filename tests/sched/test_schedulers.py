"""Tests for FCFS and EASY-backfill policies."""

import pytest

from repro.errors import SchedulingError
from repro.sched import BackfillScheduler, FcfsScheduler, Job, JobQueue, NodePool


def make_job(job_id, n_nodes, runtime=100.0, estimate=None, submit=0.0):
    return Job(
        job_id=job_id,
        name=f"job{job_id}",
        user="u",
        n_nodes=n_nodes,
        runtime_s=runtime,
        user_estimate_s=estimate if estimate is not None else runtime,
        submit_time=submit,
    )


def queued(*jobs):
    q = JobQueue()
    for j in jobs:
        q.submit(j)
    return q


class TestJobQueue:
    def test_fifo_and_membership(self):
        a, b = make_job(1, 1), make_job(2, 1)
        q = queued(a, b)
        assert q.head() is a
        assert a in q and b in q
        q.remove(a)
        assert q.head() is b
        assert len(q) == 1

    def test_double_submit_rejected(self):
        a = make_job(1, 1)
        q = queued(a)
        with pytest.raises(SchedulingError):
            q.submit(a)

    def test_remove_missing_rejected(self):
        q = JobQueue()
        with pytest.raises(SchedulingError):
            q.remove(make_job(1, 1))

    def test_non_pending_rejected(self):
        j = make_job(1, 1)
        j.cancel(0.0)
        with pytest.raises(SchedulingError):
            JobQueue().submit(j)

    def test_pending_after_head(self):
        a, b, c = make_job(1, 1), make_job(2, 1), make_job(3, 1)
        q = queued(a, b, c)
        assert q.pending_after_head() == [b, c]


class TestFcfs:
    def test_starts_in_order_while_fitting(self):
        pool = NodePool(range(10))
        q = queued(make_job(1, 4), make_job(2, 4), make_job(3, 4))
        started = FcfsScheduler().plan(q, pool, now=0.0)
        assert [j.job_id for j, _ in started] == [1, 2]
        assert q.head().job_id == 3
        assert pool.n_free == 2

    def test_head_blocks_queue(self):
        pool = NodePool(range(10))
        q = queued(make_job(1, 20), make_job(2, 1))
        started = FcfsScheduler().plan(q, pool, now=0.0)
        assert started == []  # head too big; FCFS never skips
        assert len(q) == 2

    def test_empty_queue(self):
        assert FcfsScheduler().plan(JobQueue(), NodePool(range(4)), 0.0) == []


class TestBackfill:
    def test_backfills_short_job_before_shadow(self):
        pool = NodePool(range(10))
        running = make_job(0, 6, estimate=100.0)
        pool.allocate(running, now=0.0)  # believed end t=100
        # head wants 8 nodes -> shadow at t=100; 4 free now
        head = make_job(1, 8, estimate=50.0)
        shorty = make_job(2, 4, estimate=50.0)  # finishes t=50 < shadow
        q = queued(head, shorty)
        started = BackfillScheduler().plan(q, pool, now=0.0)
        assert [j.job_id for j, _ in started] == [2]
        assert q.head() is head

    def test_does_not_backfill_job_delaying_head(self):
        pool = NodePool(range(10))
        running = make_job(0, 6, estimate=100.0)
        pool.allocate(running, now=0.0)
        head = make_job(1, 8)
        # long job would hold 4 nodes past the shadow (t=100) and the
        # head needs 8 of the 10 -> only 2 extra nodes at shadow
        long_job = make_job(2, 4, estimate=500.0)
        q = queued(head, long_job)
        started = BackfillScheduler().plan(q, pool, now=0.0)
        assert started == []

    def test_backfills_on_extra_nodes_even_if_long(self):
        pool = NodePool(range(10))
        running = make_job(0, 6, estimate=100.0)
        pool.allocate(running, now=0.0)
        head = make_job(1, 7)  # at shadow: 10 free, 3 extra
        long_small = make_job(2, 2, estimate=9999.0)  # fits in extra nodes
        q = queued(head, long_small)
        started = BackfillScheduler().plan(q, pool, now=0.0)
        assert [j.job_id for j, _ in started] == [2]

    def test_extra_nodes_budget_decrements(self):
        pool = NodePool(range(10))
        running = make_job(0, 6, estimate=100.0)
        pool.allocate(running, now=0.0)
        head = make_job(1, 7)  # 3 extra nodes at shadow
        a = make_job(2, 2, estimate=9999.0)
        b = make_job(3, 2, estimate=9999.0)  # only 1 extra left: no
        q = queued(head, a, b)
        started = BackfillScheduler().plan(q, pool, now=0.0)
        assert [j.job_id for j, _ in started] == [2]

    def test_plain_fcfs_phase_first(self):
        pool = NodePool(range(10))
        q = queued(make_job(1, 3), make_job(2, 3))
        started = BackfillScheduler().plan(q, pool, now=0.0)
        assert [j.job_id for j, _ in started] == [1, 2]

    def test_unsatisfiable_head_does_not_starve_queue(self):
        pool = NodePool(range(10))
        q = queued(make_job(1, 50), make_job(2, 2, estimate=1e6))
        started = BackfillScheduler().plan(q, pool, now=0.0)
        assert [j.job_id for j, _ in started] == [2]

    def test_depth_limit_respected(self):
        pool = NodePool(range(10))
        running = make_job(0, 6, estimate=100.0)
        pool.allocate(running, now=0.0)
        head = make_job(1, 8)
        backfillables = [make_job(i, 1, estimate=10.0) for i in range(2, 8)]
        q = queued(head, *backfillables)
        started = BackfillScheduler(max_backfill_depth=2).plan(q, pool, now=0.0)
        assert len(started) == 2

    def test_backfill_improves_utilization_over_fcfs(self):
        def run(policy):
            pool = NodePool(range(10))
            running = make_job(0, 6, estimate=100.0)
            pool.allocate(running, now=0.0)
            q = queued(make_job(1, 8), make_job(2, 2, estimate=50.0))
            return len(policy.plan(q, pool, now=0.0))

        assert run(BackfillScheduler()) > run(FcfsScheduler())


class TestSpareNodeAccounting:
    """Regression tests for EASY spare-node double-counting.

    A job admitted because it is *planned* to finish before the shadow
    time may still hold its nodes up to the kill limit.  If that limit
    reaches past the shadow, the spares it sits on are spoken for and
    must come out of the ``extra_nodes`` budget — otherwise a later
    long job re-consumes the same spares and the two encroach on the
    head's reservation together.
    """

    def test_two_jobs_racing_for_same_spares(self):
        pool = NodePool(range(20))
        running = make_job(0, 10, estimate=100.0)
        pool.allocate(running, now=0.0)  # believed end t=100
        head = make_job(1, 16)  # shadow t=100, extra = 20 - 16 = 4
        # Planned to finish at t=50 (before the shadow) but its kill
        # limit reaches t=500: it may hold 4 spares past the shadow.
        optimist = Job(
            job_id=2,
            name="optimist",
            user="u",
            n_nodes=4,
            runtime_s=400.0,
            user_estimate_s=500.0,
            submit_time=0.0,
            planned_s=50.0,
        )
        # Openly long; only admissible via the spare-node budget.
        long_job = make_job(3, 4, estimate=9999.0)
        q = queued(head, optimist, long_job)
        started = BackfillScheduler().plan(q, pool, now=0.0)
        # Before the fix both backfilled (8 spare nodes consumed out of
        # a budget of 4); now the optimist's limit burns the budget.
        assert [j.job_id for j, _ in started] == [2]

    def test_limit_within_shadow_leaves_budget_intact(self):
        pool = NodePool(range(20))
        running = make_job(0, 10, estimate=100.0)
        pool.allocate(running, now=0.0)
        head = make_job(1, 16)  # extra = 4
        # Kill limit t=50 < shadow t=100: provably returns its spares.
        quick = make_job(2, 4, estimate=50.0)
        long_job = make_job(3, 4, estimate=9999.0)
        q = queued(head, quick, long_job)
        started = BackfillScheduler().plan(q, pool, now=0.0)
        assert [j.job_id for j, _ in started] == [2, 3]


class TestReservationEdgeCases:
    def test_unsatisfiable_head_yields_infinite_shadow(self):
        pool = NodePool(range(10))
        head = make_job(1, 50)  # larger than the whole machine
        shadow, extra = BackfillScheduler()._reservation(head, pool, now=0.0)
        assert shadow == float("inf")
        assert extra == 0

    def test_unsatisfiable_after_down_nodes(self):
        pool = NodePool(range(10))
        for nid in range(4):
            pool.mark_down(nid)
        head = make_job(1, 8)  # only 6 serviceable nodes remain
        shadow, extra = BackfillScheduler()._reservation(head, pool, now=0.0)
        assert shadow == float("inf")
        assert extra == 0

    def test_head_fits_exactly_at_last_believed_end(self):
        pool = NodePool(range(10))
        a = make_job(0, 4, estimate=50.0)
        b = make_job(1, 6, estimate=100.0)
        pool.allocate(a, now=0.0)
        pool.allocate(b, now=0.0)
        head = make_job(2, 10)  # needs every node; free only after b
        shadow, extra = BackfillScheduler()._reservation(head, pool, now=0.0)
        assert shadow == 100.0
        assert extra == 0

    def test_zero_free_pool(self):
        pool = NodePool(range(4))
        running = make_job(0, 4, estimate=100.0)
        pool.allocate(running, now=0.0)
        head = make_job(1, 2)
        shadow, extra = BackfillScheduler()._reservation(head, pool, now=0.0)
        assert shadow == 100.0
        assert extra == 2

    def test_zero_free_pool_plan_does_not_crash(self):
        pool = NodePool(range(4))
        running = make_job(0, 4, estimate=100.0)
        pool.allocate(running, now=0.0)
        q = queued(make_job(1, 2), make_job(2, 1, estimate=10.0))
        assert BackfillScheduler().plan(q, pool, now=0.0) == []

    def test_empty_pool(self):
        pool = NodePool([])
        head = make_job(1, 1)
        shadow, extra = BackfillScheduler()._reservation(head, pool, now=0.0)
        assert shadow == float("inf")
        assert extra == 0
