"""Tests for the job model."""

import pytest

from repro.errors import SchedulingError
from repro.sched import Job, JobState


def make_job(**kw):
    defaults = dict(
        job_id=1,
        name="app.sh",
        user="alice",
        n_nodes=4,
        runtime_s=100.0,
        user_estimate_s=200.0,
        submit_time=0.0,
    )
    defaults.update(kw)
    return Job(**defaults)


class TestValidation:
    def test_zero_nodes_rejected(self):
        with pytest.raises(SchedulingError):
            make_job(n_nodes=0)

    def test_nonpositive_runtime_rejected(self):
        with pytest.raises(SchedulingError):
            make_job(runtime_s=0.0)

    def test_nonpositive_estimate_rejected(self):
        with pytest.raises(SchedulingError):
            make_job(user_estimate_s=-5.0)

    def test_limit_defaults_to_user_estimate(self):
        assert make_job().limit_s == 200.0

    def test_limit_falls_back_to_runtime_without_estimate(self):
        assert make_job(user_estimate_s=None).limit_s == 100.0


class TestLifecycle:
    def test_start_finish(self):
        j = make_job()
        j.start(10.0, nodes=[0, 1, 2, 3])
        assert j.state is JobState.RUNNING
        j.finish(110.0)
        assert j.state is JobState.COMPLETED
        assert j.wait_time == 10.0
        assert j.response_time == 110.0
        assert j.node_seconds == 4 * 100.0

    def test_start_wrong_node_count(self):
        j = make_job(n_nodes=3)
        with pytest.raises(SchedulingError):
            j.start(0.0, nodes=[1, 2])

    def test_double_start_rejected(self):
        j = make_job()
        j.start(0.0, nodes=[0, 1, 2, 3])
        with pytest.raises(SchedulingError):
            j.start(1.0, nodes=[0, 1, 2, 3])

    def test_finish_requires_running(self):
        with pytest.raises(SchedulingError):
            make_job().finish(1.0)

    def test_finish_requires_terminal_state(self):
        j = make_job()
        j.start(0.0, nodes=[0, 1, 2, 3])
        with pytest.raises(SchedulingError):
            j.finish(1.0, state=JobState.RUNNING)

    def test_cancel_pending(self):
        j = make_job()
        j.cancel(5.0)
        assert j.state is JobState.CANCELLED
        assert j.is_terminal
        with pytest.raises(SchedulingError):
            j.cancel(6.0)

    def test_wait_time_before_start_raises(self):
        with pytest.raises(SchedulingError):
            _ = make_job().wait_time


class TestLimits:
    def test_effective_runtime_truncated_by_limit(self):
        j = make_job(runtime_s=100.0, user_estimate_s=50.0)
        assert j.will_timeout
        assert j.effective_runtime_s == 50.0

    def test_effective_runtime_normal(self):
        j = make_job(runtime_s=100.0, user_estimate_s=150.0)
        assert not j.will_timeout
        assert j.effective_runtime_s == 100.0
