"""Tests for scheduling metrics (Eq. 6 and aggregates)."""

import pytest

from repro.errors import SchedulingError
from repro.sched import Job, JobState, ScheduleMetrics, bounded_slowdown


def finished_job(job_id, n_nodes, submit, start, end, state=JobState.COMPLETED):
    j = Job(
        job_id=job_id,
        name="x",
        user="u",
        n_nodes=n_nodes,
        runtime_s=max(end - start, 1.0),
        user_estimate_s=None,
        submit_time=submit,
    )
    j.start(start, nodes=list(range(n_nodes)))
    j.finish(end, state=state)
    return j


class TestBoundedSlowdown:
    def test_eq6_basic(self):
        # wait 90, run 10: (90+10)/max(10,10) = 10
        assert bounded_slowdown(90.0, 10.0) == 10.0

    def test_tau_guards_short_jobs(self):
        # 1-second job with 9s wait: without tau -> 10; with tau=10 -> 1
        assert bounded_slowdown(9.0, 1.0) == 1.0

    def test_floor_at_one(self):
        assert bounded_slowdown(0.0, 100.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(SchedulingError):
            bounded_slowdown(-1.0, 5.0)


class TestScheduleMetrics:
    def test_single_job_full_machine(self):
        jobs = [finished_job(1, 4, submit=0, start=0, end=100)]
        m = ScheduleMetrics.from_jobs(jobs, n_nodes=4)
        assert m.utilization == pytest.approx(1.0)
        assert m.avg_wait_s == 0.0
        assert m.avg_slowdown == 1.0
        assert m.makespan_s == 100.0

    def test_half_machine_half_utilization(self):
        jobs = [finished_job(1, 2, submit=0, start=0, end=100)]
        m = ScheduleMetrics.from_jobs(jobs, n_nodes=4)
        assert m.utilization == pytest.approx(0.5)

    def test_wait_and_slowdown(self):
        jobs = [finished_job(1, 1, submit=0, start=50, end=100)]
        m = ScheduleMetrics.from_jobs(jobs, n_nodes=1, horizon_s=100.0)
        assert m.avg_wait_s == 50.0
        assert m.avg_slowdown == pytest.approx(2.0)  # (50+50)/50

    def test_state_counts(self):
        jobs = [
            finished_job(1, 1, 0, 0, 10),
            finished_job(2, 1, 0, 10, 20, state=JobState.TIMEOUT),
            finished_job(3, 1, 0, 20, 30, state=JobState.FAILED),
        ]
        m = ScheduleMetrics.from_jobs(jobs, n_nodes=1)
        assert (m.n_completed, m.n_timeout, m.n_failed) == (1, 1, 1)

    def test_running_job_contributes_to_horizon(self):
        j = Job(
            job_id=1, name="x", user="u", n_nodes=2,
            runtime_s=1000.0, user_estimate_s=None, submit_time=0.0,
        )
        j.start(0.0, nodes=[0, 1])
        m = ScheduleMetrics.from_jobs([j], n_nodes=2, horizon_s=100.0)
        assert m.utilization == pytest.approx(1.0)

    def test_empty_run(self):
        m = ScheduleMetrics.from_jobs([], n_nodes=4, horizon_s=0.0)
        assert m.utilization == 0.0
        assert m.n_jobs == 0

    def test_invalid_n_nodes(self):
        with pytest.raises(SchedulingError):
            ScheduleMetrics.from_jobs([], n_nodes=0)

    def test_summary_contains_key_figures(self):
        jobs = [finished_job(1, 1, 0, 0, 10)]
        text = ScheduleMetrics.from_jobs(jobs, n_nodes=1).summary()
        assert "utilization" in text and "avg_wait" in text
