"""Full-stack integration: every layer exercised in one scenario.

A mid-size ESLURM cluster with stochastic failures, the monitoring
subsystem alerting, the estimation framework learning online, the
FP-Tree rearranging, satellites relaying, and the backfill scheduler
packing a day of calibrated workload — then the same day under Slurm
for the paper's headline comparisons.
"""

import pytest

from repro.cluster import ClusterSpec, FailureModel
from repro.api import build_rm
from repro.sched.job import JobState
from repro.sched.metrics import ScheduleMetrics
from repro.simkit import Simulator
from repro.workload import WorkloadConfig, generate_trace

DAY = 86_400.0


def run_day(rm_name: str, seed: int = 13, estimator=None):
    sim = Simulator(seed=seed)
    spec = ClusterSpec(
        n_nodes=512,
        n_satellites=2,
        failure_model=FailureModel(mtbf_node_hours=3000.0, repair_hours=2.0),
    )
    cluster = spec.build(sim)
    cluster.failures.start()
    cluster.monitor.start()
    rm = build_rm(rm_name, cluster, estimator=estimator)
    workload = WorkloadConfig.tianhe2a(max_nodes=64, jobs_per_day=250.0)
    jobs = generate_trace(workload, 250, seed=seed, start_time=1.0)
    rm.run_trace([j for j in jobs if j.submit_time < 0.9 * DAY], until=DAY)
    return rm


@pytest.fixture(scope="module")
def eslurm_rm():
    return run_day("eslurm", estimator="auto")


@pytest.fixture(scope="module")
def slurm_rm():
    return run_day("slurm")


class TestEndToEnd:
    def test_most_jobs_complete_despite_failures(self, eslurm_rm):
        states = [j.state for j in eslurm_rm.jobs]
        completed = sum(s is JobState.COMPLETED for s in states)
        assert completed / len(states) > 0.6

    def test_monitoring_saw_failures(self, eslurm_rm):
        cluster = eslurm_rm.cluster
        assert cluster.failures.failures_injected() > 0
        assert cluster.monitor.alert_count() > 0

    def test_fptree_construction_happened(self, eslurm_rm):
        assert eslurm_rm.fptree_stats.trees_built > 10
        assert eslurm_rm.fptree_stats.leaf_placement_ratio > 0.9

    def test_estimator_learned_online(self, eslurm_rm):
        est = eslurm_rm.estimator
        assert est is not None and est.trained
        assert est.trainings >= 2
        # planning limits diverge from user estimates once trained
        tuned = [
            j for j in eslurm_rm.jobs
            if j.user_estimate_s and abs(j.planned_s - j.user_estimate_s) > 1.0
        ]
        assert tuned

    def test_satellites_carried_the_traffic(self, eslurm_rm):
        tasks = sum(d.stats.tasks_received for d in eslurm_rm.sat_pool.daemons)
        assert tasks > 100
        # master stayed out of slave conversations
        assert eslurm_rm.master_acct.sockets.peak() < 50

    def test_headline_resource_comparison(self, eslurm_rm, slurm_rm):
        e, s = eslurm_rm.master_acct, slurm_rm.master_acct
        assert e.vmem_mb() < s.vmem_mb()
        assert e.rss_mb() < s.rss_mb()
        assert e.sockets.peak() < s.sockets.peak()

    def test_schedule_metrics_computable(self, eslurm_rm):
        m = ScheduleMetrics.from_jobs(eslurm_rm.jobs, 512, horizon_s=DAY)
        assert 0.0 < m.utilization <= 1.0
        assert m.avg_slowdown >= 1.0

    def test_determinism_across_full_stack(self):
        a = run_day("eslurm", seed=21, estimator="auto")
        b = run_day("eslurm", seed=21, estimator="auto")
        assert a.master_acct.cpu_time_s == b.master_acct.cpu_time_s
        assert [j.state for j in a.jobs] == [j.state for j in b.jobs]
        assert a.fptree_stats.trees_built == b.fptree_stats.trees_built
