"""Tests for the what-if bench artifact (tiny tier, not paper scale)."""

import json

import pytest

from repro.bench import (
    dump_whatif,
    load_whatif,
    render_whatif,
    run_whatif_bench,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def payload():
    return run_whatif_bench(
        seed=1, rm="eslurm", n_nodes=16, n_jobs=10, horizon_s=86_400.0,
        cuts=(0.25, 0.75),
    )


class TestRunWhatifBench:
    def test_anchors_are_deterministic(self, payload):
        again = run_whatif_bench(
            seed=1, rm="eslurm", n_nodes=16, n_jobs=10, horizon_s=86_400.0,
            cuts=(0.25, 0.75),
        )
        assert again["anchors"] == payload["anchors"]

    def test_cut_accounting_adds_up(self, payload):
        for cut in payload["anchors"]["cuts"].values():
            assert cut["events_at_snapshot"] + cut["events_resumed"] == (
                cut["events_total"]
            )
            assert 0.0 <= cut["fraction_skipped"] < 1.0

    def test_host_section_separated_from_anchors(self, payload):
        assert set(payload["host"]["cuts"]) == set(payload["anchors"]["cuts"])
        assert "wall" not in json.dumps(payload["anchors"])

    def test_bad_cut_rejected(self):
        with pytest.raises(ConfigurationError, match="cut"):
            run_whatif_bench(n_nodes=16, n_jobs=5, cuts=(1.5,))


class TestArtifactIo:
    def test_roundtrip_through_file(self, payload, tmp_path):
        path = tmp_path / "BENCH_whatif.json"
        text = dump_whatif(payload)
        assert text.endswith("\n")
        path.write_text(text)
        assert load_whatif(path) == payload

    def test_wrong_schema_rejected(self, payload, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({**payload, "schema": "other/9"}))
        with pytest.raises(ConfigurationError, match="schema"):
            load_whatif(path)

    def test_render_mentions_every_cut(self, payload):
        text = render_whatif(payload)
        for key in payload["anchors"]["cuts"]:
            assert key in text
