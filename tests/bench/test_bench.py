"""Bench harness: determinism golden files, schema validation, CLI."""

import json

import pytest

from repro.bench import (
    SCENARIOS,
    SMOKE_SCENARIO,
    get_scenario,
    load_bench_file,
    render_markdown,
    render_text,
    run_bench,
    validate_payload,
    write_bench_file,
)
from repro.errors import ConfigurationError

#: the one scenario unit tests execute (smallest machine, no failures)
SMOKE = SMOKE_SCENARIO


class TestScenarios:
    def test_matrix_shape(self):
        # 2 RMs x 3 machine sizes x failures on/off
        assert len(SCENARIOS) == 12
        rms = {s.rm for s in SCENARIOS.values()}
        sizes = {s.n_nodes for s in SCENARIOS.values()}
        assert rms == {"slurm", "eslurm"}
        assert sizes == {1024, 4096, 16_384}

    def test_names_match_keys(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("nope")

    def test_file_stem(self):
        assert get_scenario("slurm-1024").file_stem == "BENCH_slurm_1024"


class TestDeterminism:
    def test_same_seed_byte_identical(self, tmp_path):
        first = write_bench_file(run_bench(SMOKE, seed=0), tmp_path / "a")
        second = write_bench_file(run_bench(SMOKE, seed=0), tmp_path / "b")
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_differs(self):
        a = run_bench(SMOKE, seed=0).payload
        b = run_bench(SMOKE, seed=1).payload
        assert a != b
        assert a["seed"] == 0 and b["seed"] == 1

    def test_no_host_metrics_in_payload(self):
        result = run_bench(SMOKE, seed=0)
        for section in ("counters", "gauges", "histograms"):
            assert not any(k.startswith("host.") for k in result.payload[section])
        # host-clock data still exists — it just stays out of the file
        assert any(
            k.startswith("host.") for k in result.host_metrics["histograms"]
        ) or any(k.startswith("host.") for k in result.host_metrics["counters"])


class TestPayload:
    def test_roundtrip_through_file(self, tmp_path):
        result = run_bench(SMOKE, seed=0)
        path = write_bench_file(result, tmp_path)
        assert path.name == "BENCH_slurm_1024.json"
        assert load_bench_file(path) == result.payload

    def test_subsystem_counters_present(self):
        payload = run_bench(SMOKE, seed=0).payload
        for key in ("sim.events", "net.messages", "sched.passes", "rm.broadcasts"):
            assert payload["counters"].get(key, 0) > 0, key
        assert payload["events"] > 0
        assert payload["peak_heap_depth"] > 0
        assert payload["schedule"]["n_completed"] > 0

    def test_validate_rejects_missing_field(self):
        payload = dict(run_bench(SMOKE, seed=0).payload)
        del payload["events"]
        with pytest.raises(ConfigurationError, match="events"):
            validate_payload(payload)

    def test_validate_rejects_wrong_schema(self):
        payload = dict(run_bench(SMOKE, seed=0).payload)
        payload["schema"] = "repro-bench/0"
        with pytest.raises(ConfigurationError, match="schema"):
            validate_payload(payload)

    def test_validate_rejects_host_metric(self):
        payload = dict(run_bench(SMOKE, seed=0).payload)
        payload["counters"] = {**payload["counters"], "host.sneaky": 1.0}
        with pytest.raises(ConfigurationError, match="host.sneaky"):
            validate_payload(payload)


class TestReport:
    def _payloads(self):
        return [run_bench(SMOKE, seed=0).payload]

    def test_text_report(self):
        text = render_text(self._payloads())
        assert "slurm-1024" in text
        assert "events" in text

    def test_markdown_report(self):
        md = render_markdown(self._payloads())
        assert md.splitlines()[2].startswith("| scenario |")
        assert "| slurm-1024 |" in md


class TestCli:
    def test_bench_run_writes_valid_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench", "run", SMOKE, "--seed", "0", "--out", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_slurm_1024.json"
        assert path.exists()
        load_bench_file(path)  # schema-valid
        assert main(["bench", "validate", str(path)]) == 0
        assert main(["bench", "report", str(path)]) == 0

    def test_bench_run_json_output(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["bench", "run", SMOKE, "--seed", "0", "--out", str(tmp_path), "--json"]
        ) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert payloads[0]["name"] == SMOKE

    def test_bench_list(self, capsys):
        from repro.cli import main

        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert all(name in out for name in SCENARIOS)

    def test_bench_run_requires_selection(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bench", "run"])

    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out
