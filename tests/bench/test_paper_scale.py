"""Paper-scale tiers: baseline build/compare logic, profile mode, CLI."""

import json

import pytest

from repro.bench import (
    PAPER_FULL_SCENARIO,
    PAPER_SCALE,
    PAPER_SMOKE_SCENARIO,
    build_baseline,
    compare_baseline,
    dump_baseline,
    get_scenario,
    load_baseline,
    profile_bench,
    run_bench,
)
from repro.bench.paper_scale import BASELINE_SCHEMA, compare_tier
from repro.bench.runner import BenchResult
from repro.errors import ConfigurationError


def fake_result(name=PAPER_SMOKE_SCENARIO, seed=0, events=1000, peak=50, wall=2.0):
    spec = get_scenario(name)
    payload = {"events": events, "events_per_sim_s": 0.5, "peak_heap_depth": peak}
    return BenchResult(
        scenario=spec, seed=seed, payload=payload, host_wall_s=wall, host_metrics={}
    )


def fake_tier(seed=0, events=1000, peak=50, wall=2.0):
    return {
        "seed": seed,
        "events": events,
        "peak_heap_depth": peak,
        "host_wall_s": wall,
    }


class TestScenarios:
    def test_tiers_cover_paper_sizes(self):
        from repro.bench.scenarios import PAPER_TIER_SIZES

        assert PAPER_TIER_SIZES == (1024, 4096, 16_384, 65_536, 131_072)
        assert {s.n_nodes for s in PAPER_SCALE.values()} == set(PAPER_TIER_SIZES)
        for n_nodes in PAPER_TIER_SIZES:
            tier = PAPER_SCALE[f"paper-{n_nodes}"]
            assert tier.rm == "eslurm"
            assert tier.failures
            assert tier.n_jobs == 10_000
            assert tier.horizon_s == 86_400.0

    def test_65536_smoke_is_small_step(self):
        """CI's 65K smoke builds the full machine over a short horizon."""
        smoke = PAPER_SCALE["paper-65536-smoke"]
        full = PAPER_SCALE["paper-65536"]
        assert smoke.n_nodes == full.n_nodes == 65_536
        assert smoke.horizon_s < full.horizon_s
        assert smoke.n_jobs < full.n_jobs

    def test_reachable_via_get_scenario(self):
        assert get_scenario(PAPER_SMOKE_SCENARIO).n_nodes == 1024
        assert get_scenario(PAPER_FULL_SCENARIO).n_nodes == 16_384


class TestCompareTier:
    def test_within_tolerance_passes(self):
        c = compare_tier(fake_tier(wall=2.0), fake_result(wall=2.3), tolerance=0.25)
        assert c.ok

    def test_wall_regression_fails(self):
        c = compare_tier(fake_tier(wall=2.0), fake_result(wall=2.6), tolerance=0.25)
        assert not c.ok
        assert any("regression" in note for note in c.notes)

    def test_faster_than_baseline_passes(self):
        c = compare_tier(fake_tier(wall=2.0), fake_result(wall=0.5), tolerance=0.25)
        assert c.ok
        assert any("re-recording" in note for note in c.notes)

    def test_event_drift_fails_at_same_seed(self):
        c = compare_tier(fake_tier(events=1000), fake_result(events=1001))
        assert not c.ok
        assert any("behaviour drift" in note for note in c.notes)

    def test_per_tier_tolerance_overrides_default(self):
        """A tier's own ``tolerance`` widens (or narrows) its wall fence."""
        wide = fake_tier(wall=2.0)
        wide["tolerance"] = 0.5
        assert compare_tier(wide, fake_result(wall=2.9), tolerance=0.25).ok
        narrow = fake_tier(wall=2.0)
        narrow["tolerance"] = 0.1
        assert not compare_tier(narrow, fake_result(wall=2.3), tolerance=0.25).ok

    def test_different_seed_skips_anchors(self):
        c = compare_tier(fake_tier(seed=0, events=1000), fake_result(seed=7, events=9999))
        assert c.ok
        assert any("seed differs" in note for note in c.notes)


class TestBestOfWallFence:
    """The wall fence re-runs a loaded tier and judges the best wall.

    Deterministic anchors cannot flake, so they are checked on the
    first run only; extra runs happen only when the first wall lands
    over the fence (the happy path stays one run per tier).
    """

    def patched_walls(self, monkeypatch, walls):
        """compare_baseline sees one fake run per queued wall."""
        queue = list(walls)
        calls = []

        def stub(name, seed=0):
            calls.append(name)
            return fake_result(name, seed=seed, wall=queue.pop(0))

        monkeypatch.setattr("repro.bench.paper_scale.run_bench", stub)
        return calls

    def baseline(self, wall=2.0):
        return {
            "schema": BASELINE_SCHEMA,
            "tiers": {PAPER_SMOKE_SCENARIO: fake_tier(wall=wall)},
        }

    def test_happy_path_runs_once(self, monkeypatch):
        calls = self.patched_walls(monkeypatch, [2.1, 99.0, 99.0])
        (c,) = compare_baseline(self.baseline(), tolerance=0.25)
        assert c.ok and len(calls) == 1

    def test_loaded_first_run_recovers_on_rerun(self, monkeypatch):
        calls = self.patched_walls(monkeypatch, [9.0, 2.1, 99.0])
        (c,) = compare_baseline(self.baseline(), tolerance=0.25)
        assert c.ok and len(calls) == 2
        assert c.fresh_wall_s == 2.1
        assert any("best of 2 runs" in note and "host load" in note for note in c.notes)

    def test_persistent_regression_fails_after_best_of(self, monkeypatch):
        calls = self.patched_walls(monkeypatch, [9.0, 8.0, 7.5])
        (c,) = compare_baseline(self.baseline(), tolerance=0.25)
        assert not c.ok and len(calls) == 3
        assert c.fresh_wall_s == 7.5  # judged on the best wall
        assert any("wall regression: best of 3 runs" in note for note in c.notes)

    def test_best_of_one_never_reruns(self, monkeypatch):
        calls = self.patched_walls(monkeypatch, [9.0, 2.1, 2.1])
        (c,) = compare_baseline(self.baseline(), tolerance=0.25, best_of=1)
        assert not c.ok and len(calls) == 1

    def test_anchor_drift_fails_even_when_wall_recovers(self, monkeypatch):
        queue = [9.0, 2.1, 2.1]

        def stub(name, seed=0):
            return fake_result(name, seed=seed, events=4242, wall=queue.pop(0))

        monkeypatch.setattr("repro.bench.paper_scale.run_bench", stub)
        (c,) = compare_baseline(self.baseline(), tolerance=0.25)
        assert not c.ok
        assert any("behaviour drift" in note for note in c.notes)


class TestBaselineFile:
    def test_roundtrip(self, tmp_path):
        baseline = build_baseline([fake_result()])
        assert baseline["schema"] == BASELINE_SCHEMA
        path = tmp_path / "BENCH_paper_scale.json"
        path.write_text(dump_baseline(baseline))
        loaded = load_baseline(path)
        assert loaded == baseline

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "tiers": {"x": {}}}))
        with pytest.raises(ConfigurationError):
            load_baseline(path)

    def test_missing_tiers_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": BASELINE_SCHEMA, "tiers": {}}))
        with pytest.raises(ConfigurationError):
            load_baseline(path)

    def test_unknown_tier_rejected(self):
        baseline = {"schema": BASELINE_SCHEMA, "tiers": {"paper-1024": fake_tier()}}
        with pytest.raises(ConfigurationError):
            compare_baseline(baseline, names=["paper-9999"])

    def test_checked_in_baseline_is_valid(self):
        baseline = load_baseline("benchmarks/BENCH_paper_scale.json")
        # Every recorded tier must be a known paper-scale scenario, and
        # the three paper machine sizes must all carry a wall fence.
        # (Variant tiers like paper-1024-malleable need no fence entry.)
        assert set(baseline["tiers"]) <= set(PAPER_SCALE)
        assert {
            "paper-1024",
            "paper-4096",
            "paper-16384",
            "paper-65536",
            "paper-131072",
        } <= set(baseline["tiers"])
        # The minutes-long tiers carry their own (wider) wall fence.
        for name in ("paper-65536", "paper-131072"):
            assert baseline["tiers"][name]["tolerance"] > 0.25


class TestSmokeTier:
    def test_1k_tier_matches_checked_in_anchors(self):
        """The checked-in baseline's deterministic anchors reproduce."""
        baseline = load_baseline("benchmarks/BENCH_paper_scale.json")
        tier = baseline["tiers"][PAPER_SMOKE_SCENARIO]
        result = run_bench(PAPER_SMOKE_SCENARIO, seed=tier["seed"])
        assert result.payload["events"] == tier["events"]
        assert result.payload["peak_heap_depth"] == tier["peak_heap_depth"]


@pytest.mark.slow
class TestFullScale:
    def test_16k_profile_completes_quickly(self):
        """Acceptance: the 16,384-node / 10K-job tier profiles in <30s."""
        result, report = profile_bench(PAPER_FULL_SCENARIO, seed=0)
        assert result.host_wall_s < 30.0
        assert "cumulative" in report

    def test_65536_tier_matches_checked_in_anchors(self):
        """The full 65K tier reproduces its recorded deterministic anchors."""
        baseline = load_baseline("benchmarks/BENCH_paper_scale.json")
        tier = baseline["tiers"]["paper-65536"]
        result = run_bench("paper-65536", seed=tier["seed"])
        assert result.payload["events"] == tier["events"]
        assert result.payload["peak_heap_depth"] == tier["peak_heap_depth"]


class TestCli:
    def test_profile_flag_defaults_to_paper_full(self, capsys, monkeypatch):
        from repro import cli

        calls = []

        def stub(name, seed=0, top=25):
            calls.append((name, seed))
            return fake_result(name, seed=seed), "cumulative (stubbed)"

        monkeypatch.setattr("repro.bench.profile_bench", stub)
        assert cli.main(["bench", "--profile"]) == 0
        assert calls == [(PAPER_FULL_SCENARIO, 0)]
        assert "cumulative (stubbed)" in capsys.readouterr().out

    def test_profile_runs_named_scenario(self, capsys):
        from repro.cli import main

        assert main(["bench", "run", "slurm-1024", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "slurm-1024:" in out
        assert "cumulative" in out

    def test_compare_ok_and_regression(self, tmp_path, capsys):
        from repro.cli import main

        result = run_bench(PAPER_SMOKE_SCENARIO, seed=0)
        baseline = build_baseline([result])
        path = tmp_path / "BENCH_paper_scale.json"
        path.write_text(dump_baseline(baseline))
        assert main(["bench", "compare", str(path)]) == 0
        # An impossible wall budget must flag a regression.
        baseline["tiers"][PAPER_SMOKE_SCENARIO]["host_wall_s"] = 1e-9
        path.write_text(dump_baseline(baseline))
        assert main(["bench", "compare", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_baseline_verb_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "baseline.json"
        assert main(
            ["bench", "baseline", PAPER_SMOKE_SCENARIO, "--out", str(path)]
        ) == 0
        loaded = load_baseline(path)
        assert PAPER_SMOKE_SCENARIO in loaded["tiers"]

    def test_list_includes_paper_tiers(self, capsys):
        from repro.cli import main

        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for name in PAPER_SCALE:
            assert name in out
