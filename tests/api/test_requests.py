"""Tests for the typed request/response envelopes and their digests.

The digest is the gateway's cache key, so its contract is load-bearing:
equal (config, seed) must collide, any single field change must not,
and the value must be identical whether computed in this process or in
a spawned pool worker (the gateway mixes both freely).
"""

import dataclasses
import json

import pytest

from repro.api import (
    ChaosRequest,
    EstimateRequest,
    REQUEST_KINDS,
    SimulateRequest,
    VerifyRequest,
    WhatIfRequest,
    dispatch,
    request_from_wire,
)
from repro.errors import ConfigurationError
from repro.parallel import Task, run_tasks


class TestDigest:
    def test_identical_config_and_seed_identical_digest(self):
        a = SimulateRequest(rm="slurm", n_nodes=128, seed=7)
        b = SimulateRequest(rm="slurm", n_nodes=128, seed=7)
        assert a == b
        assert a.digest() == b.digest()

    @pytest.mark.parametrize(
        "change",
        [
            {"rm": "eslurm"},
            {"n_nodes": 129},
            {"placement": "topology"},
            {"malleable": True},
            {"seed": 8},
            {"failures": True},
            {"n_jobs": 501},
        ],
    )
    def test_any_single_field_change_changes_digest(self, change):
        base = SimulateRequest(rm="slurm", n_nodes=128, seed=7)
        changed = dataclasses.replace(base, **change)
        assert changed.digest() != base.digest()

    def test_digests_distinct_across_kinds_at_same_seed(self):
        digests = {
            SimulateRequest(seed=3).digest(),
            ChaosRequest(seed=3).digest(),
            VerifyRequest(seed=3).digest(),
            EstimateRequest(seed=3).digest(),
            WhatIfRequest(seed=3).digest(),
        }
        assert len(digests) == 5

    def test_whatif_sparse_and_explicit_perturb_collide(self):
        # the perturbation is canonicalised into the digest, so a sparse
        # wire form and its fully spelled-out equivalent share one cache
        # slot
        sparse = WhatIfRequest(seed=3, perturb={"kind": "submit-job"})
        explicit = WhatIfRequest(
            seed=3,
            perturb={"kind": "submit-job", "job_nodes": 8,
                     "job_runtime_s": 3600.0, "job_limit_s": None},
        )
        assert sparse.digest() == explicit.digest()

    def test_digest_stable_across_processes(self):
        # Two cells on a real spawned pool (two tasks + jobs=2 forces
        # the pool path, not the inline shortcut): the digest a worker
        # stamps on its response envelope must equal the digest the
        # parent computes for the same request.
        requests = [
            VerifyRequest(seed=11, layers=("metamorphic",),
                          relations=("relabel-invariance",)),
            VerifyRequest(seed=12, layers=("metamorphic",),
                          relations=("relabel-invariance",)),
        ]
        tasks = [
            Task(id=f"t{i}", kind="serve", spec={"request": r.to_wire()})
            for i, r in enumerate(requests)
        ]
        results = run_tasks(tasks, jobs=2)
        for request, result in zip(requests, results):
            assert result.ok, result.error
            assert result.value["response"]["digest"] == request.digest()


class TestWire:
    @pytest.mark.parametrize("request_", [
        SimulateRequest(rm="slurm", n_nodes=64, seed=2, malleable=True),
        ChaosRequest(scenario="flapping-node", seed=4),
        VerifyRequest(seed=5, layers=("metamorphic",), relations=("rack-relabel-score",)),
        EstimateRequest(seed=6, n_history=60, max_nodes=16),
        WhatIfRequest(seed=7, n_nodes=64, at_s=7200.0,
                      perturb={"kind": "fail-node", "node_id": 3}),
    ])
    def test_wire_round_trip(self, request_):
        rebuilt = request_from_wire(request_.to_wire())
        assert rebuilt == request_
        assert rebuilt.digest() == request_.digest()
        # the wire dict itself is JSON-serialisable
        json.dumps(request_.to_wire())

    def test_kinds_registry(self):
        assert REQUEST_KINDS == ("chaos", "estimate", "simulate", "verify", "what-if")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown request kind"):
            request_from_wire({"kind": "teleport"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown simulate request field"):
            request_from_wire({"kind": "simulate", "n_nodez": 4})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown RM"):
            request_from_wire({"kind": "simulate", "rm": "htcondor"})
        with pytest.raises(ConfigurationError, match="unknown verify layers"):
            VerifyRequest(layers=("vibes",))
        with pytest.raises(ConfigurationError, match="n_history"):
            EstimateRequest(n_history=3)
        with pytest.raises(ConfigurationError):
            ChaosRequest(scenario="nope")


class TestDispatch:
    def test_dispatch_rejects_untyped_input(self):
        with pytest.raises(ConfigurationError, match="typed request envelope"):
            dispatch({"kind": "simulate"})

    def test_verify_dispatch_deterministic_envelope(self):
        request = VerifyRequest(seed=3, layers=("metamorphic",),
                                relations=("relabel-invariance",))
        a = dispatch(request).to_wire()
        b = dispatch(request).to_wire()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["digest"] == request.digest()
        assert a["ok"] is True
        assert a["result"]["n_relations"] == 1

    def test_simulate_response_carries_report_and_counters(self):
        request = SimulateRequest(rm="slurm", n_nodes=32, n_jobs=5,
                                  horizon_s=3600.0, seed=1)
        response = dispatch(request)
        result = response.result()
        assert result["rm"] == "slurm"
        assert result["events"] > 0
        assert result["sim_time_s"] == 3600.0
        # the rich report object rides along for CLI rendering
        summary = response.simulation.report.summary()
        assert summary.startswith("[slurm]") and "master:" in summary

    def test_estimate_response_sources(self):
        trained = dispatch(EstimateRequest(seed=2, n_history=60, max_nodes=16))
        assert trained.ok
        assert trained.estimate_s is not None and trained.estimate_s > 0
        assert trained.source == "model"
        assert trained.trainings >= 1
