"""Scaled-down integration tests for the per-figure drivers.

Every driver runs at toy scale; assertions pin the qualitative shapes
the benchmarks check at full scale, so driver regressions are caught
inside the normal test suite.
"""

import pytest

from repro.experiments.fig5 import render_fig5, run_fig5
from repro.experiments.fig8 import render_fig8, run_fig8a, run_fig8b
from repro.experiments.fig9 import render_fig9, run_fig9
from repro.experiments.fig11 import run_fig11a
from repro.experiments.motivation import render_motivation, run_motivation
from repro.experiments.placement import render_placement, run_placement
from repro.experiments.tables import (
    render_table5_table6,
    render_table8,
    run_table5_table6,
    run_table8,
)


class TestFig5:
    def test_shapes(self):
        r = run_fig5(n_jobs=4000, seed=1)
        assert set(r) == {"tianhe2a", "ng-tianhe"}
        for res in r.values():
            assert 0.7 < res.overestimate_frac < 1.0
            assert len(res.interval_corr) == len(res.interval_hours)
        assert "Fig 5a" in render_fig5(r)


class TestFig8:
    def test_fig8a_reductions(self):
        a = run_fig8a(n_nodes=512, n_draws=4)
        assert a.reduction_vs("slurm", "eslurm", "job_load") > 0.0
        assert a.times["slurm"]["job_load"] > 0

    def test_fig8b_curves(self):
        b = run_fig8b(n_nodes=512, ratios=(0.0, 0.2))
        assert set(b) == {"ring", "star", "shared-memory", "tree", "fp-tree"}
        assert b["ring"][1] > b["ring"][0]
        assert b["fp-tree"][1] < b["tree"][1]
        assert "Fig 8b" in render_fig8(run_fig8a(n_nodes=256, n_draws=2), b, ratios=(0.0, 0.2))


class TestFig9:
    def test_master_ordering(self):
        r = run_fig9(n_nodes=1024, n_jobs=100)
        assert r.master["eslurm"]["vmem_mb"] < r.master["slurm"]["vmem_mb"]
        assert r.master["eslurm"]["cpu_time_min"] < r.master["slurm"]["cpu_time_min"]
        assert len(r.satellites) == 2
        assert "Fig 9" in render_fig9(r)


class TestFig11a:
    def test_interior_optimum(self):
        a = run_fig11a(n_nodes=2048, counts=(1, 2, 4, 8, 16), n_draws=3)
        assert len(a) == 5
        best = min(a, key=a.get)
        assert best not in (1, 16)


class TestTables:
    def test_table5_table6_monotonicity(self):
        r = run_table5_table6(n_nodes=1024, setups=(2, 4, 8), n_jobs=60)
        assert (
            r.satellites[8]["avg_nodes_per_task"] < r.satellites[2]["avg_nodes_per_task"]
        )
        assert "Table V" in render_table5_table6(r)

    def test_table8_alpha_monotone_ur(self):
        r = run_table8(alphas=(1.0, 1.08), n_jobs=800, warmup=100)
        assert r[1.0][1] >= r[1.08][1]  # UR falls with alpha
        assert "Table VIII" in render_table8(r)


class TestPlacement:
    def test_placement_above_chance(self):
        r = run_placement(n_nodes=512, days=4.0, constructions_per_day=12, seed=2)
        assert r.failed_encounters > 0
        # width-4 leaf base rate is ~0.61; prediction must beat it
        assert r.leaf_placement_ratio > 0.61
        assert "placed on leaves" in render_placement(r)


class TestMotivation:
    def test_slurm_worse_than_eslurm(self):
        slurm = run_motivation("slurm", n_nodes=4096, days=0.5)
        eslurm = run_motivation("eslurm", n_nodes=4096, days=0.5)
        assert slurm.vmem_gb_end > eslurm.vmem_gb_end
        assert slurm.peak_sockets > eslurm.peak_sockets
        assert "Sec. II-B" in render_motivation([slurm, eslurm])
