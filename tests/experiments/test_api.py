"""The repro.api facade: configs, run_simulation, and the harness shim."""

import warnings

import pytest

from repro.api import SimulationConfig, TelemetryConfig, quick_cluster, run_simulation
from repro.errors import ConfigurationError


class TestSimulationConfig:
    def test_keyword_only(self):
        with pytest.raises(TypeError):
            SimulationConfig("eslurm")  # positional use is an error

    def test_unknown_rm_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(rm="htcondor")

    def test_monitoring_follows_failures_by_default(self):
        assert SimulationConfig(failures=True).monitoring_effective is True
        assert SimulationConfig(failures=False).monitoring_effective is False
        assert SimulationConfig(failures=True, monitoring=False).monitoring_effective is False
        assert SimulationConfig(failures=False, monitoring=True).monitoring_effective is True

    def test_frozen(self):
        cfg = SimulationConfig()
        with pytest.raises(AttributeError):
            cfg.rm = "slurm"


class TestQuickClusterFlags:
    @pytest.mark.parametrize("failures", [False, True])
    @pytest.mark.parametrize("monitoring", [None, False, True])
    def test_flag_combinations_decoupled(self, failures, monitoring):
        cluster = quick_cluster(n_nodes=32, failures=failures, monitoring=monitoring)
        expect_monitor = failures if monitoring is None else monitoring
        assert cluster.failures._started is failures
        assert cluster.monitor._started is expect_monitor


class TestRunSimulation:
    def test_top_level_import(self):
        from repro import SimulationConfig as C
        from repro import run_simulation as r

        assert C is SimulationConfig and r is run_simulation

    def test_runs_and_reports(self):
        result = run_simulation(
            SimulationConfig(rm="slurm", n_nodes=64, seed=3, n_jobs=40)
        )
        assert result.config.rm == "slurm"
        assert result.report.schedule is not None
        assert result.report.schedule.n_completed > 0
        assert result.telemetry is None  # off by default

    def test_overrides_on_top_of_config(self):
        result = run_simulation(
            SimulationConfig(rm="eslurm", n_nodes=64), rm="slurm", n_jobs=8
        )
        assert result.config.rm == "slurm"
        assert result.config.n_jobs == 8

    def test_telemetry_snapshot_collected(self):
        result = run_simulation(
            rm="slurm", n_nodes=64, seed=3, n_jobs=30,
            telemetry=TelemetryConfig(enabled=True),
        )
        assert result.telemetry is not None
        assert result.telemetry["counters"]["sim.events"] > 0

    def test_session_restored_after_run(self):
        from repro.telemetry import facade as telemetry

        run_simulation(
            rm="slurm", n_nodes=32, n_jobs=10, telemetry=TelemetryConfig(enabled=True)
        )
        assert telemetry.active() is None


class TestHarnessShim:
    def test_old_imports_resolve_with_deprecation_warning(self):
        import repro.api
        import repro.experiments.harness as harness

        for name in ("DAY", "quick_cluster", "build_rm", "run_rm_day"):
            with pytest.warns(DeprecationWarning, match="repro.api"):
                assert getattr(harness, name) is getattr(repro.api, name)

    def test_from_import_still_works(self):
        with pytest.warns(DeprecationWarning):
            from repro.experiments.harness import quick_cluster as shimmed
        cluster = shimmed(n_nodes=16)
        assert cluster.n_nodes == 16

    def test_unknown_attribute_still_errors(self):
        import repro.experiments.harness as harness

        with pytest.raises(AttributeError):
            harness.no_such_thing

    def test_experiments_package_import_warns_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.experiments import build_rm  # noqa: F401
