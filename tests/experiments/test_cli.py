"""Tests for the CLI entry point."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_quick_placement_runs(capsys):
    assert main(["placement", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "placed on leaves" in out


def test_quick_table8_runs(capsys):
    assert main(["table8", "--quick"]) == 0
    assert "Table VIII" in capsys.readouterr().out
