"""Tests for the experiment harness and reporting."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import build_rm, quick_cluster, render_series, render_table, run_rm_day
from repro.rm import CentralizedRM, EslurmRM


class TestQuickCluster:
    def test_builds_with_simulator(self):
        cluster = quick_cluster(n_nodes=64, seed=3)
        assert cluster.n_nodes == 64
        assert cluster.sim.now == 0.0

    def test_failures_flag(self):
        cluster = quick_cluster(n_nodes=64, failures=True)
        assert cluster.spec.failure_model.enabled
        cluster2 = quick_cluster(n_nodes=64, failures=False)
        assert not cluster2.spec.failure_model.enabled


class TestBuildRm:
    def test_builds_each_rm(self):
        for name in ("slurm", "lsf", "sge", "torque", "openpbs"):
            cluster = quick_cluster(n_nodes=32)
            assert isinstance(build_rm(name, cluster), CentralizedRM)
        cluster = quick_cluster(n_nodes=32)
        assert isinstance(build_rm("eslurm", cluster), EslurmRM)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            build_rm("htcondor", quick_cluster(n_nodes=8))


class TestRunRmDay:
    def test_report_complete(self):
        cluster = quick_cluster(n_nodes=128, seed=2)
        rep = run_rm_day("slurm", cluster, n_jobs=100, seed=2)
        assert rep.rm_name == "slurm"
        assert rep.schedule is not None
        assert rep.schedule.n_jobs > 50
        assert rep.master["cpu_time_min"] > 0
        assert "utilization" in rep.summary()

    def test_eslurm_has_satellites_in_report(self):
        cluster = quick_cluster(n_nodes=128, n_satellites=3, seed=2)
        rep = run_rm_day("eslurm", cluster, n_jobs=50, seed=2)
        assert len(rep.satellites) == 3

    def test_deterministic(self):
        reps = []
        for _ in range(2):
            cluster = quick_cluster(n_nodes=64, seed=9)
            reps.append(run_rm_day("slurm", cluster, n_jobs=60, seed=9))
        assert reps[0].master["cpu_time_min"] == reps[1].master["cpu_time_min"]
        assert reps[0].schedule.avg_wait_s == reps[1].schedule.avg_wait_s


class TestHarnessShim:
    """The deprecated repro.experiments.harness location must warn with
    the exact repro.api replacement symbol and delegate, not duplicate."""

    def test_every_moved_name_warns_and_delegates(self):
        import repro.api
        import repro.experiments.harness as shim

        for name in shim._MOVED:
            with pytest.warns(
                DeprecationWarning,
                match=rf"repro\.experiments\.harness\.{name} is deprecated; "
                rf"use repro\.api\.{name} instead",
            ):
                value = getattr(shim, name)
            # delegation: the very object repro.api serves, not a copy
            assert value is getattr(repro.api, name)

    def test_unknown_attribute_still_raises(self):
        import repro.experiments.harness as shim

        with pytest.raises(AttributeError):
            shim.does_not_exist


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xyz", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text and "xyz" in text
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_render_series(self):
        text = render_series("x", [1, 2], {"y": [0.1, 0.2], "z": [3.0, 4.0]})
        assert "0.100" in text and "z" in text
